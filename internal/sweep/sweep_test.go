package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func testPolicy(t testing.TB, n int) (*core.Policy, *topology.Graph) {
	t.Helper()
	p := topology.DefaultParams(n)
	p.Seed = 1
	g, err := topology.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph
}

// TestMapCoversAllIndices checks every index runs exactly once at several
// worker counts.
func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 501
		counts := make([]int32, n)
		err := Map(n, Options{Workers: workers}, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestMapLocalPerWorkerState checks local() runs at most once per worker
// and its value reaches every fn call.
func TestMapLocalPerWorkerState(t *testing.T) {
	var made atomic.Int32
	err := MapLocal(100, Options{Workers: 4},
		func() *int32 { made.Add(1); v := int32(0); return &v },
		func(w *int32, i int) error {
			if w == nil {
				return errors.New("nil worker state")
			}
			*w++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if m := made.Load(); m < 1 || m > 4 {
		t.Errorf("local() ran %d times, want 1..4", m)
	}
}

// TestMapFirstErrorCancels checks the lowest observed error wins and that
// unstarted work is cancelled rather than drained.
func TestMapFirstErrorCancels(t *testing.T) {
	n := 10000
	var ran atomic.Int32
	wantErr := errors.New("boom")
	err := Map(n, Options{Workers: 4}, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return fmt.Errorf("item %d: %w", i, wantErr)
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
	if got := int(ran.Load()); got >= n {
		t.Errorf("cancellation did not stop the run: %d of %d items ran", got, n)
	}
}

// TestMapSerialErrorShortCircuits pins the workers=1 fast path's behavior.
func TestMapSerialErrorShortCircuits(t *testing.T) {
	var ran int
	err := Map(100, Options{Workers: 1}, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("serial path ran %d items (err %v), want 4 with error", ran, err)
	}
}

// TestMapProgress checks the callback fires once per item with a monotone
// completion count.
func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 200
		calls, last := 0, 0
		err := Map(n, Options{Workers: workers, Progress: func(done, total int) {
			calls++
			if total != n {
				t.Fatalf("total = %d, want %d", total, n)
			}
			if done <= last {
				t.Fatalf("progress not monotone: %d after %d", done, last)
			}
			last = done
		}}, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls != n || last != n {
			t.Fatalf("workers=%d: %d progress calls ending at %d, want %d", workers, calls, last, n)
		}
	}
}

// runDigest hashes an index-ordered measurement vector.
func runDigest(v []int) [sha256.Size]byte {
	h := sha256.New()
	for _, x := range v {
		binary.Write(h, binary.BigEndian, int64(x)) //nolint:errcheck // hash.Hash cannot fail
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestRunDeterministicAcrossWorkerCounts is the kernel's §7 contract: the
// same attack list yields bit-identical index-ordered results at any worker
// count, including across repeated runs at the same count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pol, g := testPolicy(t, 300)
	target := 0
	n := g.N() - 1
	job := func(i int) (core.Attack, core.Defense) {
		return core.Attack{Target: target, Attacker: i + 1}, core.Defense{}
	}
	var ref [sha256.Size]byte
	for run, workers := range []int{1, 1, 2, 4, 13} {
		pollution := make([]int, n)
		err := Run(pol, n, func(i int) (core.Attack, core.Defense) { return job(i) },
			Options{Workers: workers},
			func(i int, o *core.Outcome) { pollution[i] = o.PollutedCount() })
		if err != nil {
			t.Fatal(err)
		}
		d := runDigest(pollution)
		if run == 0 {
			ref = d
			continue
		}
		if d != ref {
			t.Errorf("workers=%d: digest %x diverges from reference %x", workers, d[:8], ref[:8])
		}
	}
}

// TestRunFanOut checks one solve feeds every observer with the same
// outcome.
func TestRunFanOut(t *testing.T) {
	pol, g := testPolicy(t, 200)
	n := g.N() - 1
	a := make([]int, n)
	b := make([]int, n)
	err := Run(pol, n,
		func(i int) (core.Attack, core.Defense) {
			return core.Attack{Target: 0, Attacker: i + 1}, core.Defense{}
		},
		Options{Workers: 4},
		func(i int, o *core.Outcome) { a[i] = o.PollutedCount() },
		func(i int, o *core.Outcome) { b[i] = o.PollutedCount() + o.N() },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if b[i]-a[i] != g.N() {
			t.Fatalf("observers disagree at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRunSolveErrorPropagates checks a bad attack cancels the run with a
// descriptive error.
func TestRunSolveErrorPropagates(t *testing.T) {
	pol, g := testPolicy(t, 200)
	err := Run(pol, g.N(),
		// Index 7 is target==attacker, which the solver rejects.
		func(i int) (core.Attack, core.Defense) {
			a := i
			if i == 7 {
				a = 0
			}
			return core.Attack{Target: 0, Attacker: a}, core.Defense{}
		},
		Options{Workers: 4},
		func(i int, o *core.Outcome) {})
	if err == nil {
		t.Fatal("expected solve error")
	}
}
