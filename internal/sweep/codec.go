// Pluggable shard-file formats. A Codec turns one ShardFile into bytes
// on disk and back; the CLI's -format flag selects one by name. Three
// codecs exist: "json" (the original human-readable indented form),
// "recio" (the compressed binary record store, internal/recio) and
// "recio-col" (its per-field columnar variant, columnar.go). All
// round-trip records exactly — json and recio through encoding/json
// marshaling of T, recio-col through the type's own column mapping — so
// the merged stream, and therefore every digest the tools print, is
// bit-identical whichever format carried the shards.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/bgpsim/bgpsim/internal/recio"
)

// Shard format names accepted by CodecByName and the tools' -format
// flag.
const (
	FormatJSON     = "json"
	FormatRecio    = "recio"
	FormatRecioCol = "recio-col"
)

// wholeShardSegment is the records-per-segment cadence for complete
// shard writes, where no checkpoint durability is at stake: small
// enough to keep the writer's compression pool fed with independent
// segments, large enough that gzip still sees long runs.
const wholeShardSegment = 2048

// Codec is one named on-disk shard-file format.
type Codec[T any] interface {
	// Name is the -format flag value selecting this codec.
	Name() string
	// Ext is the filename extension (without dot) the codec owns.
	Ext() string
	// WriteShard persists one complete shard file to path.
	WriteShard(path string, f *ShardFile[T]) error
	// ReadShard loads and validates one shard file from path.
	ReadShard(path string) (*ShardFile[T], error)
}

// CodecByName resolves a -format flag value ("" means json) at the
// default compression level.
func CodecByName[T any](name string) (Codec[T], error) {
	return CodecFor[T](name, 0)
}

// CodecFor resolves a -format flag value with an explicit gzip level
// (0 = recio.DefaultLevel; json ignores it). The columnar format
// additionally requires T to carry a column mapping — rejected here, at
// selection time, rather than when the first shard hits the disk.
func CodecFor[T any](name string, level int) (Codec[T], error) {
	switch name {
	case "", FormatJSON:
		return JSONCodec[T]{}, nil
	case FormatRecio:
		return RecioCodec[T]{Level: level}, nil
	case FormatRecioCol:
		var z T
		if _, err := columnarOf(&z); err != nil {
			return nil, fmt.Errorf("format %q: %w", name, err)
		}
		return ColumnarCodec[T]{Level: level}, nil
	}
	return nil, fmt.Errorf("unknown shard format %q (want %q, %q or %q)",
		name, FormatJSON, FormatRecio, FormatRecioCol)
}

// CheckFormat validates a -format flag value by name alone, without
// binding a record type — the CLI's flag check, where T is not yet in
// scope and per-type constraints (columnar mappings) cannot apply.
func CheckFormat(name string) error {
	switch name {
	case "", FormatJSON, FormatRecio, FormatRecioCol:
		return nil
	}
	return fmt.Errorf("unknown shard format %q (want %q, %q or %q)",
		name, FormatJSON, FormatRecio, FormatRecioCol)
}

// ShardPath names shard files "<tag>.<i>of<n>.<ext>" inside dir — the
// layout both ReadShardDir and the tools' -merge mode glob for.
func ShardPath(dir, tag string, shard, shards int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%dof%d.%s", tag, shard, shards, ext))
}

// JSONCodec is the original indented-JSON shard format.
type JSONCodec[T any] struct{}

// Name implements Codec.
func (JSONCodec[T]) Name() string { return FormatJSON }

// Ext implements Codec.
func (JSONCodec[T]) Ext() string { return "json" }

// WriteShard implements Codec.
func (JSONCodec[T]) WriteShard(path string, f *ShardFile[T]) error {
	return WriteShardFileTo(path, f)
}

// ReadShard implements Codec. Decode failures and digest mismatches are
// reported with the file line they occur on.
func (JSONCodec[T]) ReadShard(path string) (*ShardFile[T], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ShardFile[T]
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%s:%d: decode shard file: %w", path, lineAt(data, dec.InputOffset()), err)
	}
	f.Path = path
	f.Line = digestLine(data)
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	return &f, nil
}

// lineAt converts a byte offset into a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte("\n"))
}

// digestLine locates the matrix_digest field so mismatch diagnostics
// can point at the exact line; files predating digests report line 1.
func digestLine(data []byte) int {
	idx := bytes.Index(data, []byte(`"matrix_digest"`))
	if idx < 0 {
		return 1
	}
	return lineAt(data, int64(idx))
}

// RecioCodec stores shards in the compressed binary record format of
// internal/recio: one header frame carrying the ShardFile metadata,
// then every record as a compact-JSON payload inside checksummed,
// gzip-compressed frames.
type RecioCodec[T any] struct {
	// Level is the gzip compression level (0 = recio.DefaultLevel).
	Level int
}

// Name implements Codec.
func (RecioCodec[T]) Name() string { return FormatRecio }

// Ext implements Codec.
func (RecioCodec[T]) Ext() string { return "rec" }

// WriteShard implements Codec.
func (c RecioCodec[T]) WriteShard(path string, f *ShardFile[T]) error {
	if len(f.Records) != f.CellHi-f.CellLo {
		return fmt.Errorf("shard %d/%d: %d records for cell range [%d,%d)",
			f.Shard, f.Shards, len(f.Records), f.CellLo, f.CellHi)
	}
	// NoSync: a whole-shard write has no checkpoint to make durable —
	// its durability contract matches the json codec's (none beyond the
	// OS page cache).
	w, fh, err := recio.Create(path, recioHeader(f), recio.Options{Level: c.Level, NoSync: true})
	if err != nil {
		return err
	}
	var p []byte
	for i := range f.Records {
		p, err = appendRecordJSON(p[:0], f.Records[i])
		if err != nil {
			fh.Close()
			return fmt.Errorf("%s: encode record %d: %w", path, i, err)
		}
		if err := w.Append(p); err != nil {
			fh.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		// Segment whole-shard writes too, so writer memory stays bounded
		// and a truncated file still recovers a prefix. Flush (not
		// Checkpoint): there is no crash to survive mid-write, so sealed
		// segments just feed the compression pool and Close barriers once.
		if w.Pending() >= wholeShardSegment {
			if err := w.Flush(); err != nil {
				fh.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	if err := w.Close(); err != nil {
		fh.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return fh.Close()
}

// ReadShard implements Codec, via the strict decoder: a recio shard
// with any damaged byte is an error, never a silently shorter stream.
func (RecioCodec[T]) ReadShard(path string) (*ShardFile[T], error) {
	return readRecShard[T](path)
}

// readRecShard loads any .rec shard file, row or columnar — the
// header's layout field, not the codec the caller happened to hold,
// decides how the body decodes. Mixed-layout merges fall out of this
// for free.
func readRecShard[T any](path string) (*ShardFile[T], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr, _, err := recio.ReadHeader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if hdr.Layout == recio.LayoutColumns {
		hdr, cols, err := recio.DecodeColumns(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return readColumnarShard[T](path, hdr, cols)
	}
	hdr, payloads, err := recio.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f := shardFileOf[T](path, hdr, len(payloads))
	for i, p := range payloads {
		var v T
		if err := parseRecordJSON(p, &v); err != nil {
			return nil, fmt.Errorf("%s:1: decode record %d: %w", path, i, err)
		}
		f.Records = append(f.Records, v)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	return f, nil
}

// shardFileOf maps a recio header back onto ShardFile metadata, with
// capacity for n records.
func shardFileOf[T any](path string, hdr recio.Header, n int) *ShardFile[T] {
	return &ShardFile[T]{
		Experiment:   hdr.Experiment,
		Cells:        hdr.Cells,
		Groups:       hdr.Groups,
		Shard:        hdr.Shard,
		Shards:       hdr.Shards,
		CellLo:       hdr.CellLo,
		CellHi:       hdr.CellHi,
		MatrixDigest: hdr.MatrixDigest,
		Path:         path,
		Line:         1, // the header frame opens the file
		Records:      make([]T, 0, n),
	}
}

// recioHeader maps ShardFile metadata onto the recio file header.
func recioHeader[T any](f *ShardFile[T]) recio.Header {
	return recio.Header{
		Experiment:   f.Experiment,
		Cells:        f.Cells,
		Groups:       f.Groups,
		Shard:        f.Shard,
		Shards:       f.Shards,
		CellLo:       f.CellLo,
		CellHi:       f.CellHi,
		MatrixDigest: f.MatrixDigest,
	}
}

// ReadShardAuto loads one shard file, dispatching on its extension:
// ".rec" is recio (row or columnar, per its header), everything else
// the JSON codec.
func ReadShardAuto[T any](path string) (*ShardFile[T], error) {
	if filepath.Ext(path) == ".rec" {
		return readRecShard[T](path)
	}
	return JSONCodec[T]{}.ReadShard(path)
}

// ReadShardDir loads every shard file of one experiment tag from dir,
// whichever formats they were written in. Formats may be mixed across
// shards — both decode to the same record stream — and MergeShards
// still validates the set tiles the cell space and shares one matrix
// digest.
func ReadShardDir[T any](dir, tag string) ([]*ShardFile[T], error) {
	var paths []string
	for _, ext := range []string{"json", "rec"} {
		got, err := filepath.Glob(filepath.Join(dir, tag+".*of*."+ext))
		if err != nil {
			return nil, err
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("merge %s: no %s.*of*.{json,rec} shard files in %s", tag, tag, dir)
	}
	sort.Strings(paths)
	return ReadShardFiles[T](paths)
}
