// Pluggable shard-file formats. A Codec turns one ShardFile into bytes
// on disk and back; the CLI's -format flag selects one by name. Two
// codecs exist: "json" (the original human-readable indented form) and
// "recio" (the compressed binary record store, internal/recio). Both
// round-trip records through encoding/json marshaling of T, so the
// merged stream — and therefore every digest the tools print — is
// bit-identical whichever format carried the shards.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/bgpsim/bgpsim/internal/recio"
)

// Shard format names accepted by CodecByName and the tools' -format
// flag.
const (
	FormatJSON  = "json"
	FormatRecio = "recio"
)

// wholeShardSegment is the records-per-segment cadence for complete
// shard writes, where no checkpoint durability is at stake.
const wholeShardSegment = 4096

// Codec is one named on-disk shard-file format.
type Codec[T any] interface {
	// Name is the -format flag value selecting this codec.
	Name() string
	// Ext is the filename extension (without dot) the codec owns.
	Ext() string
	// WriteShard persists one complete shard file to path.
	WriteShard(path string, f *ShardFile[T]) error
	// ReadShard loads and validates one shard file from path.
	ReadShard(path string) (*ShardFile[T], error)
}

// CodecByName resolves a -format flag value ("" means json).
func CodecByName[T any](name string) (Codec[T], error) {
	switch name {
	case "", FormatJSON:
		return JSONCodec[T]{}, nil
	case FormatRecio:
		return RecioCodec[T]{}, nil
	}
	return nil, fmt.Errorf("unknown shard format %q (want %q or %q)", name, FormatJSON, FormatRecio)
}

// ShardPath names shard files "<tag>.<i>of<n>.<ext>" inside dir — the
// layout both ReadShardDir and the tools' -merge mode glob for.
func ShardPath(dir, tag string, shard, shards int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%dof%d.%s", tag, shard, shards, ext))
}

// JSONCodec is the original indented-JSON shard format.
type JSONCodec[T any] struct{}

// Name implements Codec.
func (JSONCodec[T]) Name() string { return FormatJSON }

// Ext implements Codec.
func (JSONCodec[T]) Ext() string { return "json" }

// WriteShard implements Codec.
func (JSONCodec[T]) WriteShard(path string, f *ShardFile[T]) error {
	return WriteShardFileTo(path, f)
}

// ReadShard implements Codec. Decode failures and digest mismatches are
// reported with the file line they occur on.
func (JSONCodec[T]) ReadShard(path string) (*ShardFile[T], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ShardFile[T]
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("%s:%d: decode shard file: %w", path, lineAt(data, dec.InputOffset()), err)
	}
	f.Path = path
	f.Line = digestLine(data)
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	return &f, nil
}

// lineAt converts a byte offset into a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte("\n"))
}

// digestLine locates the matrix_digest field so mismatch diagnostics
// can point at the exact line; files predating digests report line 1.
func digestLine(data []byte) int {
	idx := bytes.Index(data, []byte(`"matrix_digest"`))
	if idx < 0 {
		return 1
	}
	return lineAt(data, int64(idx))
}

// RecioCodec stores shards in the compressed binary record format of
// internal/recio: one header frame carrying the ShardFile metadata,
// then every record as a compact-JSON payload inside checksummed,
// gzip-compressed frames.
type RecioCodec[T any] struct{}

// Name implements Codec.
func (RecioCodec[T]) Name() string { return FormatRecio }

// Ext implements Codec.
func (RecioCodec[T]) Ext() string { return "rec" }

// WriteShard implements Codec.
func (RecioCodec[T]) WriteShard(path string, f *ShardFile[T]) error {
	if len(f.Records) != f.CellHi-f.CellLo {
		return fmt.Errorf("shard %d/%d: %d records for cell range [%d,%d)",
			f.Shard, f.Shards, len(f.Records), f.CellLo, f.CellHi)
	}
	w, fh, err := recio.Create(path, recioHeader(f))
	if err != nil {
		return err
	}
	for i := range f.Records {
		p, err := json.Marshal(f.Records[i])
		if err != nil {
			fh.Close()
			return fmt.Errorf("%s: encode record %d: %w", path, i, err)
		}
		if err := w.Append(p); err != nil {
			fh.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		// Segment whole-shard writes too, so writer memory stays bounded
		// and a truncated file still recovers a prefix — but at a coarser
		// cadence than streaming runs: there is no crash to survive here,
		// and longer gzip members compress better.
		if w.Pending() >= wholeShardSegment {
			if err := w.Checkpoint(); err != nil {
				fh.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	if err := w.Close(); err != nil {
		fh.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return fh.Close()
}

// ReadShard implements Codec, via the strict decoder: a recio shard
// with any damaged byte is an error, never a silently shorter stream.
func (RecioCodec[T]) ReadShard(path string) (*ShardFile[T], error) {
	hdr, payloads, err := recio.DecodeFile(path)
	if err != nil {
		return nil, err
	}
	f := &ShardFile[T]{
		Experiment:   hdr.Experiment,
		Cells:        hdr.Cells,
		Groups:       hdr.Groups,
		Shard:        hdr.Shard,
		Shards:       hdr.Shards,
		CellLo:       hdr.CellLo,
		CellHi:       hdr.CellHi,
		MatrixDigest: hdr.MatrixDigest,
		Path:         path,
		Line:         1, // the header frame opens the file
		Records:      make([]T, 0, len(payloads)),
	}
	for i, p := range payloads {
		var v T
		if err := json.Unmarshal(p, &v); err != nil {
			return nil, fmt.Errorf("%s:1: decode record %d: %w", path, i, err)
		}
		f.Records = append(f.Records, v)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	return f, nil
}

// recioHeader maps ShardFile metadata onto the recio file header.
func recioHeader[T any](f *ShardFile[T]) recio.Header {
	return recio.Header{
		Experiment:   f.Experiment,
		Cells:        f.Cells,
		Groups:       f.Groups,
		Shard:        f.Shard,
		Shards:       f.Shards,
		CellLo:       f.CellLo,
		CellHi:       f.CellHi,
		MatrixDigest: f.MatrixDigest,
	}
}

// ReadShardAuto loads one shard file, dispatching on its extension:
// ".rec" is recio, everything else the JSON codec.
func ReadShardAuto[T any](path string) (*ShardFile[T], error) {
	if filepath.Ext(path) == ".rec" {
		return RecioCodec[T]{}.ReadShard(path)
	}
	return JSONCodec[T]{}.ReadShard(path)
}

// ReadShardDir loads every shard file of one experiment tag from dir,
// whichever formats they were written in. Formats may be mixed across
// shards — both decode to the same record stream — and MergeShards
// still validates the set tiles the cell space and shares one matrix
// digest.
func ReadShardDir[T any](dir, tag string) ([]*ShardFile[T], error) {
	var paths []string
	for _, ext := range []string{"json", "rec"} {
		got, err := filepath.Glob(filepath.Join(dir, tag+".*of*."+ext))
		if err != nil {
			return nil, err
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("merge %s: no %s.*of*.{json,rec} shard files in %s", tag, tag, dir)
	}
	sort.Strings(paths)
	return ReadShardFiles[T](paths)
}
