// The parse-style record unmarshal seam, symmetric to appendjson.go's
// JSONAppender. Strict shard decoding unmarshals every record payload
// exactly once, and reflection-driven json.Unmarshal costs more than
// inflating the bytes it reads — so record types may opt into a
// hand-rolled fast path by implementing JSONParser. The contract
// mirrors the appender's: for every payload the writer produces, the
// parsed record must equal what json.Unmarshal yields, bit for bit
// (parsejson_test.go pins this on the float torture set). Payloads in
// any other shape — reordered fields, whitespace, foreign writers —
// must be handed back to encoding/json, never mis-parsed.

package sweep

import (
	"encoding/json"
	"strconv"
)

// JSONParser is the optional fast-unmarshal interface for record
// types: decode the compact JSON payload into the receiver, falling
// back to encoding/json (and its exact errors) on any byte shape the
// fast path does not recognize.
type JSONParser interface {
	ParseJSON(p []byte) error
}

// parseRecordJSON decodes one record payload: through the type's own
// parser when it has one, through encoding/json otherwise.
func parseRecordJSON[T any](p []byte, v *T) error {
	if pr, ok := any(v).(JSONParser); ok {
		return pr.ParseJSON(p)
	}
	return json.Unmarshal(p, v)
}

// ParseJSONInt parses a JSON integer field value at the start of p,
// returning the value and the bytes consumed. ok=false means the bytes
// are not an integer the fast path can vouch for — a leading zero, a
// fraction or exponent, 19+ digits — and the caller must fall back to
// encoding/json for the exact accept/reject behavior.
func ParseJSONInt(p []byte) (v int, n int, ok bool) {
	i := 0
	neg := false
	if i < len(p) && p[i] == '-' {
		neg = true
		i++
	}
	start := i
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		i++
	}
	digits := i - start
	switch {
	case digits == 0:
		return 0, 0, false
	case digits > 1 && p[start] == '0': // leading zero: invalid JSON
		return 0, 0, false
	case digits > 18: // may overflow int64; let strconv arbitrate
		return 0, 0, false
	}
	if i < len(p) && (p[i] == '.' || p[i] == 'e' || p[i] == 'E') {
		return 0, 0, false // a float landing in an int field: json's error
	}
	var u int64
	for j := start; j < i; j++ {
		u = u*10 + int64(p[j]-'0')
	}
	if neg {
		u = -u
	}
	return int(u), i, true
}

// ParseJSONFloat parses a JSON number field value at the start of p,
// returning the value and the bytes consumed. The scanner accepts
// exactly the JSON number grammar; the digits then go through
// strconv.ParseFloat, the same converter encoding/json uses, so
// accepted values decode bit-identically to json.Unmarshal. ok=false
// (bad grammar, range overflow) sends the caller back to encoding/json.
func ParseJSONFloat(p []byte) (v float64, n int, ok bool) {
	i := 0
	if i < len(p) && p[i] == '-' {
		i++
	}
	// Integer part: "0" or nonzero-led digits.
	start := i
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		i++
	}
	if i == start || (i-start > 1 && p[start] == '0') {
		return 0, 0, false
	}
	// Optional fraction.
	if i < len(p) && p[i] == '.' {
		i++
		fs := i
		for i < len(p) && p[i] >= '0' && p[i] <= '9' {
			i++
		}
		if i == fs {
			return 0, 0, false
		}
	}
	// Optional exponent.
	if i < len(p) && (p[i] == 'e' || p[i] == 'E') {
		i++
		if i < len(p) && (p[i] == '+' || p[i] == '-') {
			i++
		}
		es := i
		for i < len(p) && p[i] >= '0' && p[i] <= '9' {
			i++
		}
		if i == es {
			return 0, 0, false
		}
	}
	f, err := strconv.ParseFloat(string(p[:i]), 64)
	if err != nil {
		return 0, 0, false
	}
	return f, i, true
}
