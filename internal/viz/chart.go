package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"github.com/bgpsim/bgpsim/internal/stats"
)

// ChartSeries is one named curve for a CCDF chart.
type ChartSeries struct {
	Name   string
	Points []stats.CCDFPoint
}

// ChartOptions controls CCDF chart rendering.
type ChartOptions struct {
	Title  string
	XLabel string
	YLabel string
	Width  float64 // default 720
	Height float64 // default 480
}

// chartPalette holds distinguishable series colors.
var chartPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// RenderCCDFChart draws the paper's vulnerability-analysis figures as an
// SVG line chart: X = minimum polluted-AS count, Y = number of attacks
// achieving at least X ("the faster a curve approaches zero, the more
// resistant the AS").
func RenderCCDFChart(w io.Writer, series []ChartSeries, opts ChartOptions) error {
	if len(series) == 0 {
		return fmt.Errorf("viz: chart needs at least one series")
	}
	if opts.Width == 0 {
		opts.Width = 720
	}
	if opts.Height == 0 {
		opts.Height = 480
	}
	const marginL, marginR, marginT, marginB = 64.0, 16.0, 40.0, 48.0
	plotW := opts.Width - marginL - marginR
	plotH := opts.Height - marginT - marginB

	maxX, maxY := 1, 1
	for _, s := range series {
		for _, p := range s.Points {
			if p.X > maxX {
				maxX = p.X
			}
			if p.Count > maxY {
				maxY = p.Count
			}
		}
	}
	xOf := func(x int) float64 { return marginL + plotW*float64(x)/float64(maxX) }
	yOf := func(y int) float64 { return marginT + plotH*(1-float64(y)/float64(maxY)) }

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprint(bw, `<rect width="100%" height="100%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, `<text x="%.0f" y="22" text-anchor="middle" font-size="15">%s</text>`+"\n",
			opts.Width/2, xmlEscape(opts.Title))
	}

	// Axes with light grid and tick labels.
	fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	for i := 0; i <= 5; i++ {
		xv := maxX * i / 5
		yv := maxY * i / 5
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eeeeee"/>`+"\n",
			xOf(xv), marginT, xOf(xv), marginT+plotH)
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eeeeee"/>`+"\n",
			marginL, yOf(yv), marginL+plotW, yOf(yv))
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="11">%d</text>`+"\n",
			xOf(xv), marginT+plotH+16, xv)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="end" font-size="11">%d</text>`+"\n",
			marginL-6, yOf(yv)+4, yv)
	}
	if opts.XLabel != "" {
		fmt.Fprintf(bw, `<text x="%.0f" y="%.0f" text-anchor="middle" font-size="12">%s</text>`+"\n",
			marginL+plotW/2, opts.Height-10, xmlEscape(opts.XLabel))
	}
	if opts.YLabel != "" {
		fmt.Fprintf(bw, `<text x="16" y="%.0f" text-anchor="middle" font-size="12" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, xmlEscape(opts.YLabel))
	}

	// Series as step curves (CCDFs are right-continuous step functions).
	for si, s := range series {
		color := chartPalette[si%len(chartPalette)]
		if len(s.Points) == 0 {
			continue
		}
		path := fmt.Sprintf("M %.1f %.1f", xOf(s.Points[0].X), yOf(s.Points[0].Count))
		for i := 1; i < len(s.Points); i++ {
			// Horizontal to the new x at the old count, then vertical.
			path += fmt.Sprintf(" L %.1f %.1f", xOf(s.Points[i].X), yOf(s.Points[i-1].Count))
			path += fmt.Sprintf(" L %.1f %.1f", xOf(s.Points[i].X), yOf(s.Points[i].Count))
		}
		// Drop to zero after the last point.
		last := s.Points[len(s.Points)-1]
		path += fmt.Sprintf(" L %.1f %.1f", xOf(last.X), yOf(0))
		fmt.Fprintf(bw, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", path, color)
		// Legend entry.
		ly := marginT + 8 + float64(si)*18
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
			marginL+plotW-170, ly, marginL+plotW-146, ly, color)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n",
			marginL+plotW-140, ly+4, xmlEscape(truncate(s.Name, 28)))
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RenderBarChart draws the Figure 7 style histogram: bars of attack counts
// per trigger bucket with a mean-pollution line.
func RenderBarChart(w io.Writer, counts []int, means []float64, opts ChartOptions) error {
	if len(counts) == 0 || len(counts) != len(means) {
		return fmt.Errorf("viz: bar chart needs equal non-empty counts/means")
	}
	if opts.Width == 0 {
		opts.Width = 720
	}
	if opts.Height == 0 {
		opts.Height = 480
	}
	const marginL, marginR, marginT, marginB = 64.0, 64.0, 40.0, 48.0
	plotW := opts.Width - marginL - marginR
	plotH := opts.Height - marginT - marginB
	maxC, maxM := 1, 1.0
	for i := range counts {
		if counts[i] > maxC {
			maxC = counts[i]
		}
		if means[i] > maxM {
			maxM = means[i]
		}
	}
	barW := plotW / float64(len(counts))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprint(bw, `<rect width="100%" height="100%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, `<text x="%.0f" y="22" text-anchor="middle" font-size="15">%s</text>`+"\n",
			opts.Width/2, xmlEscape(opts.Title))
	}
	for i, c := range counts {
		h := plotH * float64(c) / float64(maxC)
		x := marginL + float64(i)*barW
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#1f77b4" opacity="0.8"/>`+"\n",
			x+1, marginT+plotH-h, math.Max(barW-2, 1), h)
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10">%d</text>`+"\n",
			x+barW/2, marginT+plotH+14, i)
	}
	// Mean-pollution line on the secondary axis.
	path := ""
	for i, m := range means {
		x := marginL + float64(i)*barW + barW/2
		y := marginT + plotH*(1-m/maxM)
		if i == 0 {
			path = fmt.Sprintf("M %.1f %.1f", x, y)
		} else {
			path += fmt.Sprintf(" L %.1f %.1f", x, y)
		}
	}
	fmt.Fprintf(bw, `<path d="%s" fill="none" stroke="#d62728" stroke-width="2"/>`+"\n", path)
	fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12">%s</text>`+"\n",
		marginL+plotW/2, opts.Height-8, xmlEscape(opts.XLabel))
	fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" text-anchor="end" font-size="11" fill="#d62728">max mean %.0f</text>`+"\n",
		opts.Width-8, marginT+12, maxM)
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}
