package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func testWorld(t *testing.T) (*topology.Graph, *topology.Classification, *core.Policy) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(300))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return con.Graph, c, pol
}

func TestComputeLayoutGeometry(t *testing.T) {
	g, c, _ := testWorld(t)
	const size = 800.0
	l := ComputeLayout(g, c, size)
	if len(l.X) != g.N() || len(l.Y) != g.N() || len(l.Radius) != g.N() {
		t.Fatal("layout arrays wrong length")
	}
	center := size / 2
	for i := 0; i < g.N(); i++ {
		dx, dy := l.X[i]-center, l.Y[i]-center
		r := math.Hypot(dx, dy)
		if r > size/2 {
			t.Fatalf("node %d placed outside canvas (r=%.1f)", i, r)
		}
		if l.Radius[i] <= 0 {
			t.Fatalf("node %d has non-positive circle radius", i)
		}
	}
	// Depth ordering: average radial distance must shrink with depth
	// (deepest at center).
	sums := make([]float64, l.MaxDepth+1)
	counts := make([]int, l.MaxDepth+1)
	for i := 0; i < g.N(); i++ {
		d := c.Depth[i]
		if d < 0 {
			continue
		}
		sums[d] += math.Hypot(l.X[i]-center, l.Y[i]-center)
		counts[d]++
	}
	var prev float64 = math.Inf(1)
	for d := 0; d <= l.MaxDepth; d++ {
		if counts[d] == 0 {
			continue
		}
		avg := sums[d] / float64(counts[d])
		if avg >= prev {
			t.Errorf("depth %d average radius %.1f not inside depth %d", d, avg, d-1)
		}
		prev = avg
	}
}

func TestRenderFrameSVG(t *testing.T) {
	g, c, pol := testWorld(t)
	e := core.NewEngine(pol)
	_, tr, err := e.Run(core.Attack{Target: 3, Attacker: g.N() - 2}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLayout(g, c, 800)
	var buf bytes.Buffer
	if err := RenderFrame(&buf, g, l, tr, FrameOptions{Generation: 2, Title: "gen 2 <test>"}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("output is not a complete SVG document")
	}
	if !strings.Contains(svg, "&lt;test&gt;") {
		t.Error("title not XML-escaped")
	}
	if strings.Count(svg, "<circle") < g.N() {
		t.Errorf("expected ≥ %d circles, found %d", g.N(), strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "<line") {
		t.Error("no message lines drawn for generation 2")
	}
}

func TestRenderPropagationFrames(t *testing.T) {
	g, c, pol := testWorld(t)
	e := core.NewEngine(pol)
	o, tr, err := e.Run(core.Attack{Target: 3, Attacker: g.N() - 2}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLayout(g, c, 600)
	var gens []int
	var lastRed int
	err = RenderPropagation(g, l, tr, "attack", func(gen int, svg []byte) error {
		gens = append(gens, gen)
		if len(svg) == 0 {
			t.Fatalf("empty frame at generation %d", gen)
		}
		lastRed = bytes.Count(svg, []byte(`fill="#d62728"`))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != tr.Generations {
		t.Errorf("frames = %d, want %d", len(gens), tr.Generations)
	}
	// By the final frame, the red node count must equal final pollution.
	finalPolluted := o.PollutedCount()
	// lastRed counts red node fills plus red lines' stroke attr is
	// `stroke="#d62728"`, which the fill pattern does not match.
	if finalPolluted > 0 && lastRed != finalPolluted {
		t.Errorf("final frame shows %d polluted nodes, outcome says %d", lastRed, finalPolluted)
	}
}
