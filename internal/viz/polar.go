// Package viz renders the paper's polar propagation graphs (Figure 1):
// each AS is placed on concentric circles by depth (deepest at the center),
// scattered angularly with higher-degree ASes toward band centers; circle
// size reflects announced address space; red lines show accepted (bogus)
// announcements and green lines rejected ones, one SVG frame per
// propagation generation.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Layout fixes each node's polar position so that all frames of one attack
// animation are directly comparable.
type Layout struct {
	X, Y     []float64
	Radius   []float64 // circle radius per node (address-space scaled)
	Size     float64   // canvas is Size × Size
	MaxDepth int
}

// ComputeLayout places all nodes. Radius bands follow depth (the paper
// plots "radius according to the depth of an AS"); angle is assigned by
// region so regional clusters stay visually adjacent, with degree pulling
// nodes toward band centers.
func ComputeLayout(g *topology.Graph, c *topology.Classification, size float64) *Layout {
	n := g.N()
	l := &Layout{
		X:        make([]float64, n),
		Y:        make([]float64, n),
		Radius:   make([]float64, n),
		Size:     size,
		MaxDepth: c.MaxDepth(),
	}
	center := size / 2
	bandWidth := (size/2 - 20) / float64(l.MaxDepth+1)

	// Group nodes by depth band, order within band by (region, ASN).
	byDepth := make([][]int, l.MaxDepth+1)
	for i := 0; i < n; i++ {
		d := c.Depth[i]
		if d == topology.DepthUnreachable {
			d = l.MaxDepth
		}
		byDepth[d] = append(byDepth[d], i)
	}
	maxWeight := float64(1)
	for i := 0; i < n; i++ {
		if w := float64(g.AddrWeight(i)); w > maxWeight {
			maxWeight = w
		}
	}
	for d, nodes := range byDepth {
		sort.Slice(nodes, func(a, b int) bool {
			ra, rb := g.Region(nodes[a]), g.Region(nodes[b])
			if ra != rb {
				return ra < rb
			}
			return g.ASN(nodes[a]) < g.ASN(nodes[b])
		})
		// Outermost ring = depth 0? The paper puts highest depth at the
		// center: radius shrinks as depth grows.
		ringR := (size/2 - 20) - bandWidth*float64(d)
		for k, node := range nodes {
			angle := 2 * math.Pi * float64(k) / float64(len(nodes))
			// Degree pulls toward band center (inner edge of the band):
			// normalize degree within the band.
			degFrac := math.Min(1, float64(g.Degree(node))/64.0)
			r := ringR - bandWidth*0.6*degFrac
			if r < 4 {
				r = 4
			}
			l.X[node] = center + r*math.Cos(angle)
			l.Y[node] = center + r*math.Sin(angle)
			l.Radius[node] = 1.5 + 4*math.Sqrt(float64(g.AddrWeight(node))/maxWeight)
		}
	}
	return l
}

// FrameOptions controls one rendered frame.
type FrameOptions struct {
	// Generation selects which events to draw as lines; 0 draws none
	// (topology only).
	Generation int
	// Title is rendered at the top of the frame.
	Title string
	// PollutedSoFar, if non-nil, colors node fills for every node already
	// polluted by the end of this generation.
	PollutedSoFar func(node int) bool
}

// RenderFrame writes one SVG frame: the full node layout plus the
// generation's messages (red = accepted bogus announcement, green =
// rejected).
func RenderFrame(w io.Writer, g *topology.Graph, l *Layout, tr *core.Trace, opts FrameOptions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		l.Size, l.Size, l.Size, l.Size)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, `<text x="%.0f" y="16" text-anchor="middle" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			l.Size/2, xmlEscape(opts.Title))
	}
	// Depth band guide circles.
	center := l.Size / 2
	bandWidth := (l.Size/2 - 20) / float64(l.MaxDepth+1)
	for d := 0; d <= l.MaxDepth; d++ {
		r := (l.Size/2 - 20) - bandWidth*float64(d)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#eeeeee" stroke-width="0.5"/>`+"\n",
			center, center, r)
	}
	// Message lines for the selected generation, rejected under accepted.
	if tr != nil && opts.Generation > 0 {
		events := tr.EventsInGen(opts.Generation)
		for pass := 0; pass < 2; pass++ {
			for _, ev := range events {
				if ev.Withdraw || ev.Origin != core.OriginAttacker {
					continue
				}
				if (pass == 1) != ev.Accepted {
					continue
				}
				color := "#2ca02c" // rejected: green
				if ev.Accepted {
					color = "#d62728" // accepted: red
				}
				fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="0.6" opacity="0.7"/>`+"\n",
					l.X[ev.From], l.Y[ev.From], l.X[ev.To], l.Y[ev.To], color)
			}
		}
	}
	// Nodes.
	for i := 0; i < g.N(); i++ {
		fill := "#9ecae1"
		if opts.PollutedSoFar != nil && opts.PollutedSoFar(i) {
			fill = "#d62728"
		}
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.2f" fill="%s" stroke="none" opacity="0.8"/>`+"\n",
			l.X[i], l.Y[i], l.Radius[i], fill)
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// RenderPropagation renders one frame per generation of the trace,
// calling emit with each generation number and frame bytes. Pollution
// coloring accumulates across generations exactly as the paper's Figure 1
// sequence does.
func RenderPropagation(g *topology.Graph, l *Layout, tr *core.Trace, titlePrefix string, emit func(gen int, svg []byte) error) error {
	polluted := make([]bool, g.N())
	for gen := 1; gen <= tr.Generations; gen++ {
		for _, ev := range tr.EventsInGen(gen) {
			if ev.Accepted && ev.Origin == core.OriginAttacker {
				polluted[ev.To] = true
			}
		}
		var buf writerBuf
		err := RenderFrame(&buf, g, l, tr, FrameOptions{
			Generation:    gen,
			Title:         fmt.Sprintf("%s — generation %d", titlePrefix, gen),
			PollutedSoFar: func(node int) bool { return polluted[node] },
		})
		if err != nil {
			return err
		}
		if err := emit(gen, buf.b); err != nil {
			return err
		}
	}
	return nil
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
