package viz

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/stats"
)

func TestRenderCCDFChart(t *testing.T) {
	series := []ChartSeries{
		{Name: "depth-1 <stub>", Points: stats.CCDF([]int{1, 5, 5, 9, 20})},
		{Name: "depth-5", Points: stats.CCDF([]int{40, 80, 80, 120})},
	}
	var buf bytes.Buffer
	err := RenderCCDFChart(&buf, series, ChartOptions{
		Title:  "Figure 2 <reproduction>",
		XLabel: "minimum polluted ASes",
		YLabel: "attacks",
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<path") < 2 {
		t.Error("expected one path per series")
	}
	if !strings.Contains(svg, "&lt;stub&gt;") || !strings.Contains(svg, "Figure 2 &lt;reproduction&gt;") {
		t.Error("labels not escaped")
	}
	if !strings.Contains(svg, "minimum polluted ASes") {
		t.Error("x label missing")
	}
	if err := RenderCCDFChart(&buf, nil, ChartOptions{}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestRenderCCDFChartLongNames(t *testing.T) {
	series := []ChartSeries{{
		Name:   strings.Repeat("very-long-strategy-name-", 4),
		Points: stats.CCDF([]int{1, 2, 3}),
	}}
	var buf bytes.Buffer
	if err := RenderCCDFChart(&buf, series, ChartOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "…") {
		t.Error("long legend name not truncated")
	}
}

func TestRenderBarChart(t *testing.T) {
	counts := []int{100, 40, 30, 20, 10}
	means := []float64{50, 120, 300, 420, 600}
	var buf bytes.Buffer
	err := RenderBarChart(&buf, counts, means, ChartOptions{
		Title:  "Figure 7 case 1",
		XLabel: "probes triggered",
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<rect") < len(counts) {
		t.Errorf("expected ≥ %d bars", len(counts))
	}
	if !strings.Contains(svg, "<path") {
		t.Error("mean-pollution line missing")
	}
	if err := RenderBarChart(&buf, nil, nil, ChartOptions{}); err == nil {
		t.Error("empty bar chart accepted")
	}
	if err := RenderBarChart(&buf, []int{1}, []float64{1, 2}, ChartOptions{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
