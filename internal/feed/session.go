package feed

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// readResult is one reader-goroutine event: a decoded message, a
// malformed-but-framed message (stream still aligned), or a fatal
// transport/framing error.
type readResult struct {
	msg       any
	err       error
	malformed error
}

// readLoop pulls frames off conn and ships them to out until a fatal
// error or done closes. It arms conn's read deadline (real sockets
// only) with the hold time as a backstop for the select-based timer in
// the session loop, so both enforcement paths the transport contract
// promises are active.
func readLoop(conn io.ReadWriteCloser, clock tick.Clock, hold time.Duration, out chan<- readResult, done <-chan struct{}) {
	for {
		var deadline time.Time
		if hold > 0 {
			deadline = clock.Now().Add(hold)
		}
		frame, err := bgpwire.ReadFrameDeadline(conn, deadline)
		var rr readResult
		if err != nil {
			rr = readResult{err: err}
		} else if msg, uerr := bgpwire.Unmarshal(frame); uerr != nil {
			rr = readResult{malformed: uerr}
		} else {
			rr = readResult{msg: msg}
		}
		select {
		case out <- rr:
		case <-done:
			return
		}
		if rr.err != nil {
			return
		}
	}
}

// HandleSession runs one collector-side BGP session on conn: OPEN
// exchange, KEEPALIVE, then UPDATE stream into the detector until the
// peer closes, sends NOTIFICATION, or the negotiated hold timer
// expires. Malformed messages are tolerated up to the per-session
// budget; recorder failures degrade recording instead of ending the
// session.
func (c *Collector) HandleSession(conn io.ReadWriteCloser) error {
	defer conn.Close()
	if err := c.register(conn); err != nil {
		return err
	}
	defer c.unregister(conn)

	clock := c.clock()
	localHold := time.Duration(c.holdTime()) * time.Second
	handshakeDeadline := clock.Now().Add(localHold)
	msg, err := bgpwire.ReadMessageDeadline(conn, handshakeDeadline)
	if err != nil {
		return fmt.Errorf("collector: read OPEN: %w", err)
	}
	open, ok := msg.(*bgpwire.Open)
	if !ok {
		return fmt.Errorf("collector: expected OPEN, got %T", msg)
	}
	if err := validateOpen(open, true); err != nil {
		_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 2, Subcode: openErrSubcode(open)}, handshakeDeadline)
		return fmt.Errorf("collector: %w", err)
	}
	c.noteOpen(conn, open.AS)
	if err := bgpwire.WriteMessageDeadline(conn, &bgpwire.Open{
		Version: 4, AS: c.LocalAS, HoldTime: c.holdTime(), RouterID: c.RouterID,
	}, handshakeDeadline); err != nil {
		return fmt.Errorf("collector: send OPEN: %w", err)
	}
	if err := bgpwire.WriteMessageDeadline(conn, bgpwire.Keepalive{}, handshakeDeadline); err != nil {
		return fmt.Errorf("collector: send KEEPALIVE: %w", err)
	}
	hold := negotiateHold(c.holdTime(), open.HoldTime)

	readCh := make(chan readResult)
	readerDone := make(chan struct{})
	defer close(readerDone)
	go readLoop(conn, clock, hold, readCh, readerDone)

	// A negotiated hold of 0 disables both timers; nil channels keep
	// those select arms permanently silent.
	var holdT, kaT tick.Timer
	var holdC, kaC <-chan time.Time
	if hold > 0 {
		holdT = clock.NewTimer(hold)
		holdC = holdT.C()
		kaT = clock.NewTimer(hold / 3)
		kaC = kaT.C()
		defer holdT.Stop()
		defer kaT.Stop()
	}

	writeDeadline := func() time.Time {
		if hold == 0 {
			return time.Time{}
		}
		return clock.Now().Add(hold)
	}

	var seq uint32
	malformed := 0
	for {
		select {
		case rr := <-readCh:
			if rr.err != nil {
				// A read error on a conn that load shedding closed is the
				// shed itself, not a transport fault.
				if c.wasShed(conn) {
					return fmt.Errorf("collector: session with %v: %w", open.AS, ErrSessionShed)
				}
				if errors.Is(rr.err, io.EOF) {
					return nil
				}
				return fmt.Errorf("collector: session with %v: %w", open.AS, rr.err)
			}
			if hold > 0 {
				tick.Rearm(holdT, hold)
			}
			if rr.malformed != nil {
				malformed++
				c.mu.Lock()
				c.stats.MalformedMessages++
				c.mu.Unlock()
				if malformed > c.maxMalformed() {
					c.logf("collector: closing %v after %d malformed messages (last: %v)", open.AS, malformed, rr.malformed)
					_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 1 /* message header error */}, writeDeadline())
					return fmt.Errorf("collector: session with %v: malformed budget exhausted: %w", open.AS, rr.malformed)
				}
				continue
			}
			switch m := rr.msg.(type) {
			case *bgpwire.Update:
				if c.noteUpdate(conn) {
					// This session is the load-shed victim: the crossing
					// update is dropped, the peer gets a Cease.
					_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 6 /* cease */}, writeDeadline())
					return fmt.Errorf("collector: session with %v: %w", open.AS, ErrSessionShed)
				}
				seq++
				c.record(open, m, seq)
				if c.Validator != nil {
					c.Validator.Observe(open.AS, m)
				}
				if c.Detector != nil {
					c.Detector.Process(TimedUpdate{Time: seq, PeerAS: open.AS, Update: m})
				}
			case bgpwire.Keepalive:
				// Hold-timer refresh happened above; nothing else to do.
			case *bgpwire.Notification:
				return nil // peer is closing the session
			default:
				_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 5 /* FSM error */}, writeDeadline())
				return fmt.Errorf("collector: unexpected %T mid-session", rr.msg)
			}
		case <-kaC:
			if err := bgpwire.WriteMessageDeadline(conn, bgpwire.Keepalive{}, writeDeadline()); err != nil {
				return fmt.Errorf("collector: send KEEPALIVE to %v: %w", open.AS, err)
			}
			tick.Rearm(kaT, hold/3)
		case <-holdC:
			c.mu.Lock()
			c.stats.HoldExpiries++
			c.mu.Unlock()
			c.logf("collector: hold timer (%v) expired for %v; reaping session", hold, open.AS)
			_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 4 /* hold timer expired */}, writeDeadline())
			return fmt.Errorf("collector: session with %v: hold timer expired", open.AS)
		}
	}
}

// record logs one update to the MRT recorder, degrading to a counted,
// logged no-op on the first write failure — a full disk must cost the
// operator the recording, not the live detection feed.
func (c *Collector) record(open *bgpwire.Open, m *bgpwire.Update, seq uint32) {
	if c.Recorder == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.Degraded {
		c.stats.RecorderDropped++
		return
	}
	err := c.Recorder.WriteBGP4MP(&mrt.BGP4MPMessage{
		Timestamp: seq,
		PeerAS:    open.AS,
		LocalAS:   c.LocalAS,
		Message:   m,
	})
	if err != nil {
		c.stats.RecorderErrors++
		c.stats.Degraded = true
		c.logf("collector: MRT recorder failed (%v); degraded mode: recording disabled, sessions stay up", err)
	}
}
