package feed

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// drainUntilNotification reads collector-to-peer messages off conn so
// collector writes never block, delivering the first NOTIFICATION seen.
func drainUntilNotification(conn net.Conn) <-chan *bgpwire.Notification {
	ch := make(chan *bgpwire.Notification, 1)
	go func() {
		for {
			m, err := bgpwire.ReadMessage(conn)
			if err != nil {
				close(ch)
				return
			}
			if n, ok := m.(*bgpwire.Notification); ok {
				ch <- n
				return
			}
		}
	}()
	return ch
}

// peerHandshake performs the probe half of the OPEN exchange by hand.
func peerHandshake(t *testing.T, conn net.Conn, hold uint16) {
	t.Helper()
	if err := bgpwire.WriteMessage(conn, &bgpwire.Open{Version: 4, AS: 65001, HoldTime: hold, RouterID: 2}); err != nil {
		t.Fatal(err)
	}
	if m, err := bgpwire.ReadMessage(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*bgpwire.Open); !ok {
		t.Fatalf("expected OPEN, got %T", m)
	}
	if m, err := bgpwire.ReadMessage(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(bgpwire.Keepalive); !ok {
		t.Fatalf("expected KEEPALIVE, got %T", m)
	}
}

// TestHoldTimerReapsHungPeer: a peer that completes the handshake and
// then goes silent must be reaped within the negotiated hold time,
// with a hold-timer-expired NOTIFICATION — all on a fake clock, so the
// 90s hold elapses instantly and deterministically.
func TestHoldTimerReapsHungPeer(t *testing.T) {
	fc := tick.NewFake()
	c := &Collector{LocalAS: 65535, RouterID: 1, HoldTime: 90, Clock: fc}
	server, client := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	peerHandshake(t, client, 90)
	notifCh := drainUntilNotification(client)

	// The session loop arms its hold and keepalive timers; only then is
	// advancing past the hold deadline meaningful.
	fc.BlockUntilTimers(2)
	fc.Advance(91 * time.Second)

	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "hold timer expired") {
			t.Fatalf("session error = %v, want hold timer expiry", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hung peer was not reaped")
	}
	if n, ok := <-notifCh; !ok || n.Code != 4 {
		t.Errorf("NOTIFICATION = %+v (ok=%v), want code 4 (hold timer expired)", n, ok)
	}
	if st := c.Stats(); st.HoldExpiries != 1 {
		t.Errorf("HoldExpiries = %d, want 1", st.HoldExpiries)
	}
}

// TestHoldTimerRefreshedByTraffic: a peer that keeps sending inside the
// hold window must never be reaped. The peer sends malformed-but-framed
// messages because their receipt is observable through the stats
// counter — the deterministic rendezvous each fake-clock advance needs
// — and any received message, even a malformed one, proves liveness.
func TestHoldTimerRefreshedByTraffic(t *testing.T) {
	fc := tick.NewFake()
	c := &Collector{LocalAS: 65535, RouterID: 1, HoldTime: 90, Clock: fc, MaxMalformed: 100}
	server, client := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	peerHandshake(t, client, 90)
	_ = drainUntilNotification(client)

	malformed := make([]byte, bgpwire.HeaderLen+1)
	for i := 0; i < 16; i++ {
		malformed[i] = 0xff
	}
	malformed[17] = byte(len(malformed))
	malformed[18] = bgpwire.TypeKeepalive

	fc.BlockUntilTimers(2)
	for i := 0; i < 5; i++ {
		// Refresh at 60s intervals — always inside the 90s hold window.
		fc.Advance(60 * time.Second)
		if _, err := client.Write(malformed); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().MalformedMessages != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("message %d never processed", i+1)
			}
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case err := <-errCh:
		t.Fatalf("live session reaped: %v", err)
	default:
	}
	client.Close()
	<-errCh
	if st := c.Stats(); st.HoldExpiries != 0 {
		t.Errorf("HoldExpiries = %d, want 0", st.HoldExpiries)
	}
}

// TestCollectorRejectsBadOpen: version and hold-time validation must
// answer with the right OPEN-error NOTIFICATION subcode.
func TestCollectorRejectsBadOpen(t *testing.T) {
	cases := []struct {
		name    string
		open    *bgpwire.Open
		subcode uint8
	}{
		{"bad version", &bgpwire.Open{Version: 3, AS: 65001, HoldTime: 90, RouterID: 2}, 1},
		{"hold below floor", &bgpwire.Open{Version: 4, AS: 65001, HoldTime: 2, RouterID: 2}, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Collector{LocalAS: 65535, RouterID: 1}
			server, client := net.Pipe()
			defer client.Close()
			errCh := make(chan error, 1)
			go func() { errCh <- c.HandleSession(server) }()
			if err := bgpwire.WriteMessage(client, tc.open); err != nil {
				t.Fatal(err)
			}
			m, err := bgpwire.ReadMessage(client)
			if err != nil {
				t.Fatal(err)
			}
			n, ok := m.(*bgpwire.Notification)
			if !ok || n.Code != 2 || n.Subcode != tc.subcode {
				t.Errorf("reply = %#v, want NOTIFICATION 2/%d", m, tc.subcode)
			}
			if err := <-errCh; err == nil {
				t.Error("session with bad OPEN accepted")
			}
		})
	}
}

// TestCollectorMalformedBudget: malformed-but-framed messages are
// tolerated up to MaxMalformed, then the session closes with a header
// error NOTIFICATION; a healthy update in between still reaches the
// detector.
func TestCollectorMalformedBudget(t *testing.T) {
	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/16"), MaxLength: 24, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(&store, nil)
	c := &Collector{LocalAS: 65535, RouterID: 1, Detector: det, MaxMalformed: 2}
	server, client := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	peerHandshake(t, client, 90)
	notifCh := drainUntilNotification(client)

	// A correctly framed KEEPALIVE with an illegal body: malformed but
	// stream-aligned.
	malformed := make([]byte, bgpwire.HeaderLen+3)
	for i := 0; i < 16; i++ {
		malformed[i] = 0xff
	}
	malformed[17] = byte(len(malformed))
	malformed[18] = bgpwire.TypeKeepalive

	if _, err := client.Write(malformed); err != nil {
		t.Fatal(err)
	}
	// A valid (alert-raising) update between malformed messages must be
	// processed.
	if err := bgpwire.WriteMessage(client, &bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 666}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(malformed); err != nil {
		t.Fatal(err)
	}
	// Third malformed message exceeds MaxMalformed=2.
	if _, err := client.Write(malformed); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "malformed budget") {
			t.Fatalf("session error = %v, want malformed-budget exhaustion", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session not closed after malformed budget")
	}
	if n, ok := <-notifCh; !ok || n.Code != 1 {
		t.Errorf("NOTIFICATION = %+v (ok=%v), want code 1", n, ok)
	}
	if got := len(det.Alerts()); got != 1 {
		t.Errorf("alerts = %d, want 1 (update between malformed messages must be processed)", got)
	}
	if st := c.Stats(); st.MalformedMessages != 3 {
		t.Errorf("MalformedMessages = %d, want 3", st.MalformedMessages)
	}
}

// TestHandleSessionGarbageTable: truncated and garbage wire input must
// error that one session without wedging anything (run under -race in
// CI).
func TestHandleSessionGarbageTable(t *testing.T) {
	cases := []struct {
		name   string
		script func(t *testing.T, client net.Conn)
	}{
		{"garbage instead of OPEN", func(t *testing.T, client net.Conn) {
			_, _ = client.Write([]byte("definitely not BGP at all, sorry"))
		}},
		{"truncated OPEN frame", func(t *testing.T, client net.Conn) {
			frame, err := bgpwire.Marshal(&bgpwire.Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 2})
			if err != nil {
				t.Fatal(err)
			}
			_, _ = client.Write(frame[:len(frame)-4])
		}},
		{"oversized length field", func(t *testing.T, client net.Conn) {
			frame := make([]byte, bgpwire.HeaderLen)
			for i := 0; i < 16; i++ {
				frame[i] = 0xff
			}
			frame[16], frame[17] = 0xff, 0xff // length 65535 > MaxMessageLen
			frame[18] = bgpwire.TypeKeepalive
			_, _ = client.Write(frame)
		}},
		{"mid-session truncated update", func(t *testing.T, client net.Conn) {
			peerHandshake(t, client, 90)
			frame, err := bgpwire.Marshal(&bgpwire.Update{
				Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 666}, NextHop: 1,
				NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
			})
			if err != nil {
				t.Fatal(err)
			}
			_, _ = client.Write(frame[:len(frame)/2])
		}},
		{"second OPEN mid-session", func(t *testing.T, client net.Conn) {
			peerHandshake(t, client, 90)
			_ = drainUntilNotification(client)
			_ = bgpwire.WriteMessage(client, &bgpwire.Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 2})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Collector{LocalAS: 65535, RouterID: 1}
			server, client := net.Pipe()
			errCh := make(chan error, 1)
			go func() { errCh <- c.HandleSession(server) }()
			tc.script(t, client)
			client.Close()
			select {
			case err := <-errCh:
				if err == nil {
					t.Error("session with broken wire input returned nil")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("session wedged on broken wire input")
			}
		})
	}
}

// TestShutdownRacesAccept: Shutdown concurrent with a storm of Accepts
// and handshakes must neither deadlock nor leak sessions (the -race CI
// job is the other half of this test).
func TestShutdownRacesAccept(t *testing.T) {
	c := &Collector{LocalAS: 65535, RouterID: 1, Detector: NewDetector(&rpki.Store{}, nil)}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = c.Serve(l)
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				return // listener already closed: that's the race working
			}
			p := &Probe{AS: asn.ASN(65100 + i), RouterID: uint32(100 + i)}
			if err := p.Dial(conn); err != nil {
				return // collector shut down mid-handshake: also fine
			}
			_ = p.Send(&bgpwire.Update{
				Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{asn.ASN(65100 + i)}, NextHop: 1,
				NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
			})
			_ = p.Close()
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = c.Shutdown(ctx) // races the dials above by design
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case <-serveDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown+Close")
	}
}

// TestShutdownForceClosesHungSession: a session kept alive by its peer
// must be force-closed once the Shutdown context expires, and the
// expired context's error surfaced.
func TestShutdownForceClosesHungSession(t *testing.T) {
	c := &Collector{LocalAS: 65535, RouterID: 1}
	server, client := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	peerHandshake(t, client, 90)
	_ = drainUntilNotification(client)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (session was live)", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("force-closed session returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session survived force-close")
	}
}

// failAfter errors every write once n bytes have passed through —
// a disk filling up under the MRT recorder.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, context.DeadlineExceeded // any error will do
	}
	f.written += len(p)
	return len(p), nil
}

// TestRecorderDegradedMode: a recorder write failure must demote the
// collector to degraded mode — counted and logged — while the session
// and the detector keep working.
func TestRecorderDegradedMode(t *testing.T) {
	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/16"), MaxLength: 24, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(&store, nil)
	var logged []string
	c := &Collector{
		LocalAS: 65535, RouterID: 1, Detector: det,
		Recorder: mrt.NewWriter(&failAfter{n: 64}, 0),
		Logf:     func(format string, args ...any) { logged = append(logged, format) },
	}
	server, client := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	peerHandshake(t, client, 90)

	// Enough updates to overflow the recorder's buffered writer, plus
	// the alert-raising one at the end — it must be detected even after
	// recording has degraded.
	for i := 0; i < 200; i++ {
		if err := bgpwire.WriteMessage(client, &bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 100}, NextHop: 1,
			NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bgpwire.WriteMessage(client, &bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 666}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("session torn down by recorder failure: %v", err)
	}
	st := c.Stats()
	if !st.Degraded || st.RecorderErrors != 1 {
		t.Errorf("stats = %+v, want Degraded with exactly one RecorderError", st)
	}
	if st.RecorderDropped == 0 {
		t.Error("no updates counted as dropped while degraded")
	}
	if len(det.Alerts()) != 1 {
		t.Errorf("alerts = %d, want 1 (detection must survive recorder failure)", len(det.Alerts()))
	}
	if len(logged) == 0 {
		t.Error("degraded mode was not logged")
	}
}
