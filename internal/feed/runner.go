package feed

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// Runner backoff defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 30 * time.Second
)

// RunnerStats is a snapshot of a ProbeRunner's transport counters.
type RunnerStats struct {
	// Dials counts connection attempts (successful or not).
	Dials int
	// Sessions counts completed handshakes.
	Sessions int
	// Reconnects counts sessions established after the first.
	Reconnects int
	// Sent counts UPDATE writes that succeeded, retransmissions
	// included.
	Sent int
	// Shed counts updates dropped by the bounded pending queue
	// (MaxPending) before they were ever written.
	Shed int
	// Pending is the number of updates not yet written on the current
	// session.
	Pending int
	// Connected reports whether a session is currently established.
	Connected bool
}

// ProbeRunner is a self-healing probe session: it dials the collector,
// streams queued updates, answers keepalives, and reconnects with
// capped exponential backoff plus jitter when the transport fails.
// Like a real BGP speaker it retransmits its full table (every update
// ever enqueued) on each new session, so a connection reset can delay
// but never lose an announcement; the collector's detector deduplicates
// the replays. Clock and jitter RNG are injected — there is no
// time.Now or global rand in the retry path — so the backoff schedule
// is exactly reproducible under a tick.Fake.
type ProbeRunner struct {
	AS       asn.ASN
	RouterID uint32
	// Dial establishes one transport connection per attempt — typically
	// a net.Dial wrapper (with its own timeout), or a chaos.Wrap around
	// one in fault-injection tests.
	Dial func() (io.ReadWriteCloser, error)
	// HoldTime is the hold time (seconds) offered in OPEN; 0 means
	// DefaultHoldTime.
	HoldTime uint16
	// BackoffBase and BackoffMax bound reconnect delays: consecutive
	// failure n (1-based) sleeps min(BackoffMax, BackoffBase<<(n-1)),
	// halved-and-jittered when Jitter is set. Zero values take the
	// defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts caps consecutive failed connect attempts before Run
	// gives up; 0 retries forever. A completed handshake resets the
	// count.
	MaxAttempts int
	// Clock injects time; nil means the wall clock.
	Clock tick.Clock
	// Jitter, when non-nil, randomizes each backoff delay uniformly in
	// [d/2, d) ("equal jitter") to de-synchronize reconnect storms.
	// Callers seed it explicitly; nil applies the full deterministic
	// delay.
	Jitter *rand.Rand
	// Logf, when non-nil, receives reconnect/backoff log lines.
	Logf func(format string, args ...any)
	// MaxPending bounds the unsent queue: when an Enqueue pushes the
	// pending count past it, the oldest unsent updates are shed (counted
	// in RunnerStats.Shed) down to LowPending, so a stalled or slow
	// collector degrades to measured drops instead of unbounded memory.
	// 0 means unbounded — the pre-backpressure behavior.
	MaxPending int
	// LowPending is the low watermark a shed drains the queue to;
	// 0 or an out-of-range value means MaxPending/2.
	LowPending int

	mu       sync.Mutex
	queue    []*bgpwire.Update
	next     int // queue[next:] not yet written on the current session
	inflight bool
	drainReq bool
	stats    RunnerStats
	notify   chan struct{}
}

// CloseWhenDrained switches a running probe into drain mode: once every
// queued update has been written on a live session, the session closes
// with a Cease NOTIFICATION and Run returns nil — the graceful end of a
// replay, where a force-closed transport could strand written-but-unread
// updates in the peer's buffers. Safe from any goroutine; updates
// enqueued after the call still count toward the drain.
func (r *ProbeRunner) CloseWhenDrained() {
	r.mu.Lock()
	r.drainReq = true
	ch := r.notifyLocked()
	r.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
}

// draining reports whether the runner should behave as if started by
// RunDrain: either statically (the static flag from run) or because
// CloseWhenDrained was called.
func (r *ProbeRunner) draining(static bool) bool {
	if static {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drainReq
}

// Enqueue adds one update to the runner's table, shedding the oldest
// unsent updates when MaxPending is exceeded. Safe from any goroutine,
// before or during Run.
func (r *ProbeRunner) Enqueue(u *bgpwire.Update) {
	r.mu.Lock()
	r.queue = append(r.queue, u)
	r.shedLocked()
	ch := r.notifyLocked()
	r.mu.Unlock()
	select {
	case ch <- struct{}{}:
	default:
	}
}

// shedLocked enforces MaxPending: above the high watermark it drops the
// oldest unsent updates down to the low watermark. The update a Send has
// in flight and the newest update are never shed, so the session loop's
// position stays coherent and fresh data always wins over stale.
func (r *ProbeRunner) shedLocked() {
	if r.MaxPending <= 0 {
		return
	}
	pending := len(r.queue) - r.next
	if pending <= r.MaxPending {
		return
	}
	low := r.LowPending
	if low <= 0 || low > r.MaxPending {
		low = r.MaxPending / 2
	}
	drop := pending - low
	lo := r.next
	if r.inflight {
		lo++
	}
	if max := len(r.queue) - 1 - lo; drop > max {
		drop = max
	}
	if drop <= 0 {
		return
	}
	r.queue = append(r.queue[:lo], r.queue[lo+drop:]...)
	r.stats.Shed += drop
}

func (r *ProbeRunner) notifyLocked() chan struct{} {
	if r.notify == nil {
		r.notify = make(chan struct{}, 1)
	}
	return r.notify
}

// Pending returns how many updates await (re)transmission.
func (r *ProbeRunner) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue) - r.next
}

// Stats returns a snapshot of the runner's counters.
func (r *ProbeRunner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Pending = len(r.queue) - r.next
	return s
}

// peek returns the next unwritten update, or nil. A non-nil return marks
// the update in flight, which pins it against shedding until advance or
// rewind.
func (r *ProbeRunner) peek() *bgpwire.Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < len(r.queue) {
		r.inflight = true
		return r.queue[r.next]
	}
	r.inflight = false
	return nil
}

// advance marks the head update written.
func (r *ProbeRunner) advance() {
	r.mu.Lock()
	r.next++
	r.inflight = false
	r.stats.Sent++
	r.mu.Unlock()
}

// rewind schedules a full-table retransmission for the next session.
func (r *ProbeRunner) rewind() {
	r.mu.Lock()
	r.next = 0
	r.inflight = false
	r.mu.Unlock()
}

func (r *ProbeRunner) clock() tick.Clock {
	return tick.Or(r.Clock)
}

func (r *ProbeRunner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *ProbeRunner) setConnected(v bool) {
	r.mu.Lock()
	r.stats.Connected = v
	r.mu.Unlock()
}

// backoff returns the delay before retry n (1-based consecutive
// failure count).
func (r *ProbeRunner) backoff(n int) time.Duration {
	base, max := r.BackoffBase, r.BackoffMax
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if r.Jitter != nil && d > 1 {
		half := d / 2
		d = half + time.Duration(r.Jitter.Int63n(int64(half)))
	}
	return d
}

// Run drives the probe until ctx is cancelled: dial, handshake, stream,
// and reconnect on failure with capped exponential backoff. It returns
// ctx.Err() on cancellation or a terminal error once MaxAttempts
// consecutive connect attempts fail.
func (r *ProbeRunner) Run(ctx context.Context) error { return r.run(ctx, false) }

// RunDrain is Run, except it returns nil as soon as every enqueued
// update has been written on a live session (closing it with a Cease
// NOTIFICATION) — the mode batch feeders and the demo daemon use.
func (r *ProbeRunner) RunDrain(ctx context.Context) error { return r.run(ctx, true) }

func (r *ProbeRunner) run(ctx context.Context, drain bool) error {
	if r.Dial == nil {
		return fmt.Errorf("probe %v: runner needs a Dial function", r.AS)
	}
	clock := r.clock()
	fails := 0
	for {
		if r.draining(drain) && r.Pending() == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		r.stats.Dials++
		r.mu.Unlock()
		conn, err := r.Dial()
		if err == nil {
			var established bool
			established, err = r.session(ctx, conn, drain)
			if err == nil {
				return nil // drain completed
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if established {
				fails = 0
				// The next session re-announces the full table, exactly
				// like a BGP speaker rebuilding Adj-RIB-Out after a
				// session reset.
				r.rewind()
			}
		}
		fails++
		if r.MaxAttempts > 0 && fails >= r.MaxAttempts {
			return fmt.Errorf("probe %v: giving up after %d consecutive failed attempts: %w", r.AS, fails, err)
		}
		delay := r.backoff(fails)
		r.logf("probe %v: session failed (%v); reconnecting in %v (attempt %d)", r.AS, err, delay, fails+1)
		t := clock.NewTimer(delay)
		select {
		case <-t.C():
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// session runs one established connection to completion. It returns
// established=false when the handshake itself failed. A nil error means
// drain mode finished the table.
func (r *ProbeRunner) session(ctx context.Context, conn io.ReadWriteCloser, drain bool) (established bool, err error) {
	clock := r.clock()
	p := &Probe{AS: r.AS, RouterID: r.RouterID, HoldTime: r.HoldTime, Clock: clock}
	if err := p.Dial(conn); err != nil {
		return false, err // Dial closed conn
	}
	defer conn.Close()
	r.mu.Lock()
	r.stats.Sessions++
	if r.stats.Sessions > 1 {
		r.stats.Reconnects++
	}
	notify := r.notifyLocked()
	r.mu.Unlock()
	r.setConnected(true)
	defer r.setConnected(false)

	hold := p.NegotiatedHold()
	readCh := make(chan readResult)
	readerDone := make(chan struct{})
	defer close(readerDone)
	go readLoop(conn, clock, hold, readCh, readerDone)

	var holdT, kaT tick.Timer
	var holdC, kaC <-chan time.Time
	if hold > 0 {
		holdT = clock.NewTimer(hold)
		holdC = holdT.C()
		kaT = clock.NewTimer(hold / 3)
		kaC = kaT.C()
		defer holdT.Stop()
		defer kaT.Stop()
	}

	// handleRead processes one collector-to-probe message; a non-nil
	// return ends the session.
	handleRead := func(rr readResult) error {
		if rr.err != nil {
			return fmt.Errorf("probe %v: read: %w", r.AS, rr.err)
		}
		if hold > 0 {
			tick.Rearm(holdT, hold)
		}
		if rr.malformed != nil {
			return fmt.Errorf("probe %v: malformed message from collector: %w", r.AS, rr.malformed)
		}
		if n, ok := rr.msg.(*bgpwire.Notification); ok {
			return fmt.Errorf("probe %v: collector closed session (NOTIFICATION code %d)", r.AS, n.Code)
		}
		return nil // keepalives (and any stray updates) just refresh the hold timer
	}

	for {
		if u := r.peek(); u != nil {
			if err := p.Send(u); err != nil {
				return true, err
			}
			r.advance()
			if hold > 0 {
				tick.Rearm(kaT, hold/3) // our write already proved liveness to the peer
			}
			// Drain reader/timer events without blocking between sends.
			select {
			case rr := <-readCh:
				if err := handleRead(rr); err != nil {
					return true, err
				}
			case <-ctx.Done():
				_ = p.Close()
				return true, ctx.Err()
			default:
			}
			continue
		}
		if r.draining(drain) {
			_ = p.Close() // Cease; the table is fully written
			return true, nil
		}
		select {
		case <-notify:
		case rr := <-readCh:
			if err := handleRead(rr); err != nil {
				return true, err
			}
		case <-kaC:
			if err := bgpwire.WriteMessageDeadline(conn, bgpwire.Keepalive{}, clock.Now().Add(hold)); err != nil {
				return true, fmt.Errorf("probe %v: send KEEPALIVE: %w", r.AS, err)
			}
			tick.Rearm(kaT, hold/3)
		case <-holdC:
			_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 4 /* hold timer expired */}, clock.Now().Add(hold))
			return true, fmt.Errorf("probe %v: hold timer (%v) expired: collector silent", r.AS, hold)
		case <-ctx.Done():
			_ = p.Close()
			return true, ctx.Err()
		}
	}
}
