package feed

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/mrt"
)

// Collector is a BGP route collector: probe routers open BGP sessions to
// it and stream UPDATEs, which it hands to a Detector — the architecture
// of BGPmon and the hijack detectors built on it.
type Collector struct {
	LocalAS  asn.ASN
	RouterID uint32
	Detector *Detector
	// Recorder, when non-nil, logs every received UPDATE as an MRT
	// BGP4MP record — the format RouteViews publishes its update feeds
	// in. Callers own flushing/closing the underlying writer after
	// Shutdown.
	Recorder *mrt.Writer

	// mu guards sessions, closed, and (in HandleSession) writes through
	// Recorder, which is not itself concurrency-safe. The accept loop
	// checks closed and registers with wg under the same critical section
	// so Shutdown can never miss an in-flight session.
	mu       sync.Mutex
	sessions int
	wg       sync.WaitGroup
	closed   bool
}

// Serve accepts sessions on l until l is closed. It returns the listener's
// close error (net.ErrClosed after Shutdown).
func (c *Collector) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			c.wg.Wait()
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			c.wg.Wait()
			return net.ErrClosed
		}
		c.sessions++
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			// Session errors are per-peer: a broken probe must not take
			// the collector down.
			_ = c.HandleSession(conn)
		}()
	}
}

// Sessions returns the number of sessions accepted so far.
func (c *Collector) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions
}

// HandleSession runs one collector-side BGP session on conn: OPEN
// exchange, KEEPALIVE, then UPDATE stream into the detector until the
// peer closes or sends NOTIFICATION.
func (c *Collector) HandleSession(conn io.ReadWriteCloser) error {
	defer conn.Close()
	msg, err := bgpwire.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("collector: read OPEN: %w", err)
	}
	open, ok := msg.(*bgpwire.Open)
	if !ok {
		return fmt.Errorf("collector: expected OPEN, got %T", msg)
	}
	if err := bgpwire.WriteMessage(conn, &bgpwire.Open{
		Version: 4, AS: c.LocalAS, HoldTime: 180, RouterID: c.RouterID,
	}); err != nil {
		return fmt.Errorf("collector: send OPEN: %w", err)
	}
	if err := bgpwire.WriteMessage(conn, bgpwire.Keepalive{}); err != nil {
		return fmt.Errorf("collector: send KEEPALIVE: %w", err)
	}
	var clock uint32
	for {
		msg, err := bgpwire.ReadMessage(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("collector: session with %v: %w", open.AS, err)
		}
		switch m := msg.(type) {
		case *bgpwire.Update:
			clock++
			if c.Recorder != nil {
				c.mu.Lock()
				err := c.Recorder.WriteBGP4MP(&mrt.BGP4MPMessage{
					Timestamp: clock,
					PeerAS:    open.AS,
					LocalAS:   c.LocalAS,
					Message:   m,
				})
				c.mu.Unlock()
				if err != nil {
					return fmt.Errorf("collector: record update: %w", err)
				}
			}
			if c.Detector != nil {
				c.Detector.Process(TimedUpdate{Time: clock, PeerAS: open.AS, Update: m})
			}
		case bgpwire.Keepalive:
			// Hold-timer refresh; nothing to do.
		case *bgpwire.Notification:
			return nil // peer is closing the session
		default:
			return fmt.Errorf("collector: unexpected %T mid-session", msg)
		}
	}
}

// Shutdown stops accepting new sessions and waits for active ones.
func (c *Collector) Shutdown() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}

// Probe is the router side of a collector session: it opens the session
// and streams updates.
type Probe struct {
	AS       asn.ASN
	RouterID uint32

	conn io.ReadWriteCloser
}

// Dial performs the BGP handshake over an established connection.
func (p *Probe) Dial(conn io.ReadWriteCloser) error {
	if err := bgpwire.WriteMessage(conn, &bgpwire.Open{
		Version: 4, AS: p.AS, HoldTime: 180, RouterID: p.RouterID,
	}); err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: send OPEN: %w", p.AS, err)
	}
	msg, err := bgpwire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: read OPEN: %w", p.AS, err)
	}
	if _, ok := msg.(*bgpwire.Open); !ok {
		conn.Close()
		return fmt.Errorf("probe %v: expected OPEN, got %T", p.AS, msg)
	}
	if msg, err = bgpwire.ReadMessage(conn); err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: read KEEPALIVE: %w", p.AS, err)
	}
	if _, ok := msg.(bgpwire.Keepalive); !ok {
		conn.Close()
		return fmt.Errorf("probe %v: expected KEEPALIVE, got %T", p.AS, msg)
	}
	p.conn = conn
	return nil
}

// Send streams one UPDATE on the session.
func (p *Probe) Send(u *bgpwire.Update) error {
	if p.conn == nil {
		return fmt.Errorf("probe %v: session not established", p.AS)
	}
	return bgpwire.WriteMessage(p.conn, u)
}

// Close ends the session with a Cease NOTIFICATION.
func (p *Probe) Close() error {
	if p.conn == nil {
		return nil
	}
	_ = bgpwire.WriteMessage(p.conn, &bgpwire.Notification{Code: 6 /* cease */})
	err := p.conn.Close()
	p.conn = nil
	return err
}
