package feed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// DefaultHoldTime is the hold time (seconds) offered in OPEN when a
// Collector or Probe does not set one — RFC 4271's recommended 180s,
// which the previous implementation advertised but never enforced.
const DefaultHoldTime uint16 = 180

// DefaultMaxMalformed bounds how many malformed-but-correctly-framed
// messages one session tolerates before the collector closes that peer.
const DefaultMaxMalformed = 4

// minHoldTime is RFC 4271 §6.2's floor: a non-zero hold time below 3
// seconds is unacceptable and rejected with an OPEN error NOTIFICATION.
const minHoldTime = 3

// DefaultLoadWindow is the collector's read-rate accounting window when
// LoadWindow is unset.
const DefaultLoadWindow = time.Second

// ErrSessionShed marks a session the collector closed under global load:
// the aggregate update rate crossed MaxLoad and this session was the
// noisiest in the current window.
var ErrSessionShed = errors.New("feed: session shed under collector load")

// CollectorStats is a snapshot of the collector's robustness counters.
type CollectorStats struct {
	// Sessions counts sessions accepted so far.
	Sessions int
	// RecorderErrors counts MRT recorder write failures. The first one
	// demotes the collector to degraded mode (recording disabled,
	// sessions stay up) instead of tearing down the session that
	// happened to trigger it.
	RecorderErrors int
	// RecorderDropped counts updates not recorded while degraded.
	RecorderDropped int
	// Degraded reports whether recording has been disabled by a write
	// failure.
	Degraded bool
	// MalformedMessages counts correctly framed messages that failed to
	// decode, across all sessions.
	MalformedMessages int
	// HoldExpiries counts peers reaped by the hold timer.
	HoldExpiries int
	// Updates counts UPDATE messages received across all sessions,
	// including the ones dropped by load shedding.
	Updates int
	// LoadSheds counts sessions closed because the aggregate update rate
	// crossed MaxLoad.
	LoadSheds int
}

// SessionLoad is one session's read-rate accounting snapshot.
type SessionLoad struct {
	// AS is the peer AS (zero until its OPEN arrives).
	AS asn.ASN
	// Window is the update count in the current accounting window.
	Window int
	// Total is the lifetime update count.
	Total int
	// Shed reports whether the session was closed by load shedding.
	Shed bool
}

// sessLoad is the collector's per-session accounting record. Guarded by
// Collector.mu; loadList preserves registration order so victim
// selection and SessionLoads are deterministic.
type sessLoad struct {
	conn   io.Closer
	as     asn.ASN
	window int
	total  int
	shed   bool
}

// Collector is a BGP route collector: probe routers open BGP sessions to
// it and stream UPDATEs, which it hands to a Detector — the architecture
// of BGPmon and the hijack detectors built on it. The zero value plus
// LocalAS/RouterID is usable; robustness knobs (hold time, malformed
// budget, clock) default sensibly.
type Collector struct {
	LocalAS  asn.ASN
	RouterID uint32
	Detector *Detector
	// Recorder, when non-nil, logs every received UPDATE as an MRT
	// BGP4MP record — the format RouteViews publishes its update feeds
	// in. Callers own flushing/closing the underlying writer after
	// Shutdown. A write failure degrades recording (counted, logged)
	// rather than killing the session that hit it.
	Recorder *mrt.Writer
	// HoldTime is the hold time (seconds) offered in the collector's
	// OPEN; 0 means DefaultHoldTime. Each session enforces the minimum
	// of this and the peer's offer (RFC 4271 §4.2); a negotiated 0
	// disables the timer.
	HoldTime uint16
	// MaxMalformed bounds per-session tolerated malformed messages;
	// 0 means DefaultMaxMalformed.
	MaxMalformed int
	// Clock injects time for hold/keepalive enforcement. Nil means the
	// wall clock; tests substitute a tick.Fake.
	Clock tick.Clock
	// MaxLoad bounds the aggregate UPDATE count the collector accepts
	// per LoadWindow across every session. When an update pushes the
	// total past it, the collector sheds the noisiest session of the
	// window — Cease NOTIFICATION, connection closed, ErrSessionShed —
	// so one runaway feed degrades to one lost peer, never a melted
	// collector. 0 disables load shedding.
	MaxLoad int
	// LoadWindow is the read-rate accounting window; 0 means
	// DefaultLoadWindow.
	LoadWindow time.Duration
	// Validator, when non-nil, puts the collector in route-server mode:
	// every announced (prefix, origin) pair is origin-validated once at
	// the collector boundary — the IXP middlebox model — instead of by
	// each probe. See RouteServer.
	Validator *RouteServer
	// Logf, when non-nil, receives operational log lines (degraded
	// mode, reaped peers).
	Logf func(format string, args ...any)

	// mu guards sessions, conns, closed, stats, and (in session.go)
	// writes through Recorder, which is not itself concurrency-safe.
	// The accept loop checks closed and registers with wg under the
	// same critical section so Shutdown can never miss an in-flight
	// session.
	mu          sync.Mutex
	sessions    int
	conns       map[io.Closer]struct{}
	wg          sync.WaitGroup
	closed      bool
	stats       CollectorStats
	loads       map[io.Closer]*sessLoad
	loadList    []*sessLoad // registration order
	windowStart time.Time
	windowCount int
}

// Serve accepts sessions on l until l is closed. It returns the listener's
// close error (net.ErrClosed after Shutdown).
func (c *Collector) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			c.wg.Wait()
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			c.wg.Wait()
			return net.ErrClosed
		}
		// Pre-register the session goroutine under the same critical
		// section as the closed check, so Shutdown's wait can never miss
		// a conn that was accepted but whose HandleSession (which
		// registers itself) has not started yet.
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			// Session errors are per-peer: a broken probe must not take
			// the collector down.
			_ = c.HandleSession(conn)
		}()
	}
}

// Sessions returns the number of sessions accepted so far.
func (c *Collector) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions
}

// Stats returns a snapshot of the collector's robustness counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Sessions = c.sessions
	return s
}

// Shutdown stops accepting new sessions and waits for active ones to
// drain naturally (peer EOF or NOTIFICATION). If ctx expires first,
// every live session connection is force-closed, the wait completes,
// and ctx's error is returned.
func (c *Collector) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	c.mu.Lock()
	for conn := range c.conns { //bgplint:ignore maporder force-close teardown; close order is immaterial
		_ = conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return ctx.Err()
}

// register enrolls one session with the collector: it joins the
// Shutdown wait group, is counted, and its conn becomes force-closable.
// It fails once Shutdown has begun.
func (c *Collector) register(conn io.Closer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return net.ErrClosed
	}
	c.sessions++
	c.wg.Add(1)
	if c.conns == nil {
		c.conns = make(map[io.Closer]struct{})
	}
	c.conns[conn] = struct{}{}
	if c.loads == nil {
		c.loads = make(map[io.Closer]*sessLoad)
	}
	l := &sessLoad{conn: conn}
	c.loads[conn] = l
	c.loadList = append(c.loadList, l)
	return nil
}

// unregister is register's counterpart: the conn stops being tracked
// and the Shutdown wait group is released. The load record stays in
// loadList so SessionLoads keeps reporting finished sessions.
func (c *Collector) unregister(conn io.Closer) {
	c.mu.Lock()
	delete(c.conns, conn)
	delete(c.loads, conn)
	c.mu.Unlock()
	c.wg.Done()
}

// noteOpen records the peer AS on the session's load entry once its
// OPEN arrives.
func (c *Collector) noteOpen(conn io.Closer, as asn.ASN) {
	c.mu.Lock()
	if l := c.loads[conn]; l != nil {
		l.as = as
	}
	c.mu.Unlock()
}

// loadWindow returns the accounting window length.
func (c *Collector) loadWindow() time.Duration {
	if c.LoadWindow > 0 {
		return c.LoadWindow
	}
	return DefaultLoadWindow
}

// noteUpdate accounts one received UPDATE against the session's window
// and the global MaxLoad threshold. Crossing the threshold sheds the
// noisiest unshed session of the window (earliest-registered on ties):
// its conn is closed here — never a blocking write under mu — and its
// session loop translates the resulting read error into ErrSessionShed.
// The return reports whether conn's own session is now shed, so the
// caller stops processing and closes with a Cease of its own.
func (c *Collector) noteUpdate(conn io.Closer) (shedSelf bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock().Now()
	if c.windowStart.IsZero() || now.Sub(c.windowStart) >= c.loadWindow() {
		c.windowStart = now
		c.windowCount = 0
		for _, l := range c.loadList {
			l.window = 0
		}
	}
	l := c.loads[conn]
	if l == nil {
		return false
	}
	l.window++
	l.total++
	c.windowCount++
	c.stats.Updates++
	if l.shed {
		return true
	}
	if c.MaxLoad <= 0 || c.windowCount <= c.MaxLoad {
		return false
	}
	var victim *sessLoad
	for _, cand := range c.loadList {
		if cand.shed || c.loads[cand.conn] == nil {
			continue // already shed, or session already gone
		}
		if victim == nil || cand.window > victim.window {
			victim = cand
		}
	}
	if victim == nil {
		return false
	}
	victim.shed = true
	c.windowCount -= victim.window
	c.stats.LoadSheds++
	c.logf("collector: %d updates in %v exceeds MaxLoad %d; shedding noisiest session %v (%d in window)",
		c.stats.Updates, c.loadWindow(), c.MaxLoad, victim.as, victim.window)
	if victim != l {
		_ = victim.conn.Close()
		return false
	}
	return true
}

// wasShed reports whether conn's session was closed by load shedding.
func (c *Collector) wasShed(conn io.Closer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.loads[conn]
	return l != nil && l.shed
}

// SessionLoads returns every session's read-rate accounting snapshot,
// finished sessions included, in registration order.
func (c *Collector) SessionLoads() []SessionLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SessionLoad, 0, len(c.loadList))
	for _, l := range c.loadList {
		out = append(out, SessionLoad{AS: l.as, Window: l.window, Total: l.total, Shed: l.shed})
	}
	return out
}

func (c *Collector) clock() tick.Clock {
	return tick.Or(c.Clock)
}

func (c *Collector) holdTime() uint16 {
	if c.HoldTime != 0 {
		return c.HoldTime
	}
	return DefaultHoldTime
}

func (c *Collector) maxMalformed() int {
	if c.MaxMalformed != 0 {
		return c.MaxMalformed
	}
	return DefaultMaxMalformed
}

func (c *Collector) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// negotiateHold returns the session hold time per RFC 4271 §4.2: the
// minimum of the two offers, where 0 from either side disables the
// timer entirely.
func negotiateHold(local, peer uint16) time.Duration {
	if local == 0 || peer == 0 {
		return 0
	}
	h := local
	if peer < h {
		h = peer
	}
	return time.Duration(h) * time.Second
}

// Probe is the router side of a collector session: it opens the session
// and streams updates. For automatic reconnection with backoff, wrap it
// in a ProbeRunner.
type Probe struct {
	AS       asn.ASN
	RouterID uint32
	// HoldTime is the hold time (seconds) offered in OPEN; 0 means
	// DefaultHoldTime. The session value is the negotiated minimum with
	// the peer's offer.
	HoldTime uint16
	// Clock injects time for handshake deadlines; nil means the wall
	// clock.
	Clock tick.Clock

	conn io.ReadWriteCloser
	hold time.Duration
	peer bgpwire.Open
}

func (p *Probe) holdTime() uint16 {
	if p.HoldTime != 0 {
		return p.HoldTime
	}
	return DefaultHoldTime
}

func (p *Probe) clock() tick.Clock {
	return tick.Or(p.Clock)
}

// handshakeDeadline bounds each handshake read/write by the local hold
// offer, so a silent peer cannot hang Dial forever on a real socket.
func (p *Probe) handshakeDeadline() time.Time {
	return p.clock().Now().Add(time.Duration(p.holdTime()) * time.Second)
}

// Dial performs the BGP handshake over an established connection,
// validating the peer's OPEN (version 4, non-zero hold time of at least
// 3s per RFC 4271 §6.2) and recording the negotiated hold time — the
// minimum of both offers — for NegotiatedHold.
func (p *Probe) Dial(conn io.ReadWriteCloser) error {
	if err := bgpwire.WriteMessageDeadline(conn, &bgpwire.Open{
		Version: 4, AS: p.AS, HoldTime: p.holdTime(), RouterID: p.RouterID,
	}, p.handshakeDeadline()); err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: send OPEN: %w", p.AS, err)
	}
	msg, err := bgpwire.ReadMessageDeadline(conn, p.handshakeDeadline())
	if err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: read OPEN: %w", p.AS, err)
	}
	open, ok := msg.(*bgpwire.Open)
	if !ok {
		conn.Close()
		return fmt.Errorf("probe %v: expected OPEN, got %T", p.AS, msg)
	}
	if err := validateOpen(open, false); err != nil {
		// Best-effort OPEN error NOTIFICATION before teardown.
		_ = bgpwire.WriteMessageDeadline(conn, &bgpwire.Notification{Code: 2, Subcode: openErrSubcode(open)}, p.handshakeDeadline())
		conn.Close()
		return fmt.Errorf("probe %v: %w", p.AS, err)
	}
	if msg, err = bgpwire.ReadMessageDeadline(conn, p.handshakeDeadline()); err != nil {
		conn.Close()
		return fmt.Errorf("probe %v: read KEEPALIVE: %w", p.AS, err)
	}
	if _, ok := msg.(bgpwire.Keepalive); !ok {
		conn.Close()
		return fmt.Errorf("probe %v: expected KEEPALIVE, got %T", p.AS, msg)
	}
	p.conn = conn
	p.peer = *open
	p.hold = negotiateHold(p.holdTime(), open.HoldTime)
	return nil
}

// validateOpen checks an incoming OPEN. allowZeroHold distinguishes the
// collector (hold 0 legitimately disables the timer) from the probe,
// which requires a live hold timer from its collector.
func validateOpen(o *bgpwire.Open, allowZeroHold bool) error {
	if o.Version != 4 {
		return fmt.Errorf("peer OPEN: unsupported BGP version %d", o.Version)
	}
	if o.HoldTime == 0 && !allowZeroHold {
		return fmt.Errorf("peer OPEN: zero hold time (peer would never be reaped)")
	}
	if o.HoldTime != 0 && o.HoldTime < minHoldTime {
		return fmt.Errorf("peer OPEN: hold time %ds below the %ds floor", o.HoldTime, minHoldTime)
	}
	return nil
}

// openErrSubcode maps a rejected OPEN to the RFC 4271 §6.2 subcode.
func openErrSubcode(o *bgpwire.Open) uint8 {
	if o.Version != 4 {
		return 1 // unsupported version number
	}
	return 6 // unacceptable hold time
}

// NegotiatedHold returns the hold time agreed during Dial (zero when
// disabled or before Dial succeeds).
func (p *Probe) NegotiatedHold() time.Duration { return p.hold }

// PeerOpen returns the collector's OPEN as received during Dial.
func (p *Probe) PeerOpen() bgpwire.Open { return p.peer }

// Send streams one UPDATE on the session.
func (p *Probe) Send(u *bgpwire.Update) error {
	if p.conn == nil {
		return fmt.Errorf("probe %v: session not established", p.AS)
	}
	var deadline time.Time
	if p.hold > 0 {
		deadline = p.clock().Now().Add(p.hold)
	}
	return bgpwire.WriteMessageDeadline(p.conn, u, deadline)
}

// Close ends the session with a Cease NOTIFICATION.
func (p *Probe) Close() error {
	if p.conn == nil {
		return nil
	}
	_ = bgpwire.WriteMessage(p.conn, &bgpwire.Notification{Code: 6 /* cease */})
	err := p.conn.Close()
	p.conn = nil
	p.hold = 0
	return err
}
