package feed

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// TestRouteServerMemoizes: in route-server mode the collector validates
// each distinct (prefix, origin) pair exactly once, however many peers
// announce it — and the detector's alert set is identical to per-probe
// validation over the same stream.
func TestRouteServerMemoizes(t *testing.T) {
	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/16"), MaxLength: 24, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	rs := NewRouteServer(&store)
	det := NewDetector(rs, nil)
	det.NotePublished(prefix.MustParse("10.0.0.0/16"))
	c := &Collector{
		LocalAS: 65535, RouterID: 1,
		Clock:     tick.NewFake(),
		Validator: rs,
		Detector:  det,
	}

	valid := &bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65010, 100}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
	}
	hijack := &bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65010, 666}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.1.0/24")},
	}

	// Two peers each announce the same valid route and the same hijack.
	for _, as := range []asn.ASN{65001, 65002} {
		probe, errCh := dialRaw(t, c, as)
		if err := bgpwire.WriteMessage(probe, valid); err != nil {
			t.Fatal(err)
		}
		if err := bgpwire.WriteMessage(probe, hijack); err != nil {
			t.Fatal(err)
		}
		probe.Close()
		<-errCh
	}

	st := rs.Stats()
	if st.Lookups != 2 {
		t.Errorf("Lookups = %d, want 2: one per distinct (prefix, origin) pair", st.Lookups)
	}
	if st.Observed != 4 || st.Invalid != 2 {
		t.Errorf("stats = %+v, want Observed 4 / Invalid 2", st)
	}
	if st.Hits < 2 {
		t.Errorf("Hits = %d, want ≥ 2 (repeat announcements served from the memo)", st.Hits)
	}
	alerts := det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (deduplicated)", len(alerts))
	}
	if alerts[0].Reason != ReasonSubPrefix || alerts[0].Origin != 666 {
		t.Errorf("alert = %+v, want subprefix-hijack by 666", alerts[0])
	}

	// Per-probe validation over the same stream yields the same digest.
	ref := NewDetector(&store, nil)
	ref.NotePublished(prefix.MustParse("10.0.0.0/16"))
	for _, as := range []asn.ASN{65001, 65002} {
		ref.Process(TimedUpdate{Time: 1, PeerAS: as, Update: valid})
		ref.Process(TimedUpdate{Time: 1, PeerAS: as, Update: hijack})
	}
	if AlertSetDigest(det.Alerts()) != AlertSetDigest(ref.Alerts()) {
		t.Error("route-server alert digest differs from per-probe validation")
	}
}
