// Package feed implements the live hijack-detection pipeline the paper's
// Section VI models statistically: BGP UPDATE streams from probe ASes
// (BGPmon-style vantage feeds), an origin-validating detector that raises
// alerts on announcements contradicting published route origins
// (PHAS/ROVER-style), and a BGP-over-TCP collector transport so the whole
// path — wire format, session, validation, alerting — runs end to end.
package feed

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// TimedUpdate is one feed event: a BGP UPDATE as reported by a peer AS at
// a logical time (the simulator uses propagation distance as time).
type TimedUpdate struct {
	Time   uint32
	PeerAS asn.ASN
	Update *bgpwire.Update
}

// FromOutcome reconstructs the announcement stream a collector peering
// with the given probe ASes records once an attack converges: each probe
// reports its selected AS path for the contested prefix. In a sub-prefix
// attack the attacker's more-specific prefix is announced instead.
func FromOutcome(g *topology.Graph, o *core.Outcome, contested prefix.Prefix, attackerPrefix prefix.Prefix, probes []int) ([]TimedUpdate, error) {
	var out []TimedUpdate
	for _, p := range probes {
		if p < 0 || p >= g.N() {
			return nil, fmt.Errorf("feed: probe index %d out of range", p)
		}
		path := o.Path(p)
		if path == nil {
			continue // probe has no route: nothing to report
		}
		asPath := make([]asn.ASN, 0, len(path))
		for _, node := range path {
			asPath = append(asPath, g.ASN(node))
		}
		announced := contested
		if o.Origin(p) == core.OriginAttacker && attackerPrefix != (prefix.Prefix{}) {
			announced = attackerPrefix
		}
		out = append(out, TimedUpdate{
			Time:   uint32(o.Dist(p)),
			PeerAS: g.ASN(p),
			Update: &bgpwire.Update{
				Origin:  bgpwire.OriginIGP,
				ASPath:  asPath,
				NextHop: uint32(p),
				NLRI:    []prefix.Prefix{announced},
			},
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// AlertReason classifies why the detector fired.
type AlertReason string

const (
	// ReasonInvalidOrigin: the announced origin contradicts published
	// route-origin data.
	ReasonInvalidOrigin AlertReason = "invalid-origin"
	// ReasonSubPrefix: the announcement is a more-specific of a published
	// prefix and its origin is not authorized for it.
	ReasonSubPrefix AlertReason = "subprefix-hijack"
)

// Alert is one detector finding.
type Alert struct {
	Time   uint32
	PeerAS asn.ASN
	Prefix prefix.Prefix
	Origin asn.ASN
	Path   []asn.ASN
	Reason AlertReason
}

// Detector validates announcement streams against an origin oracle and
// raises deduplicated alerts. It is safe for concurrent Process calls
// (collector sessions run per-connection goroutines).
type Detector struct {
	validator rpki.OriginValidator
	onAlert   func(Alert)

	// mu guards seen, alerts, and published; every concurrent session
	// goroutine funnels through it in raise/NotePublished. onAlert fires
	// while it is held, so callbacks must not re-enter the detector.
	mu     sync.Mutex
	seen   map[alertKey]bool
	alerts []Alert
	// published marks prefixes with authoritative data, to classify
	// sub-prefix alerts.
	published *prefix.Trie[struct{}]
}

type alertKey struct {
	p      prefix.Prefix
	origin asn.ASN
}

// NewDetector builds a detector over the validator. onAlert (optional) is
// invoked synchronously for every new alert.
func NewDetector(v rpki.OriginValidator, onAlert func(Alert)) *Detector {
	return &Detector{
		validator: v,
		onAlert:   onAlert,
		seen:      make(map[alertKey]bool),
		published: &prefix.Trie[struct{}]{},
	}
}

// NotePublished registers a prefix as having authoritative origin data,
// enabling sub-prefix classification for its more-specifics.
func (d *Detector) NotePublished(p prefix.Prefix) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.published.Insert(p, struct{}{})
}

// Process validates one feed event, possibly raising an alert.
func (d *Detector) Process(tu TimedUpdate) {
	u := tu.Update
	origin, ok := u.OriginAS()
	if !ok {
		return // withdrawals carry no origin
	}
	for _, p := range u.NLRI {
		if d.validator.Validate(p, origin) != rpki.Invalid {
			continue
		}
		d.raise(tu, p, origin)
	}
}

func (d *Detector) raise(tu TimedUpdate, p prefix.Prefix, origin asn.ASN) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := alertKey{p, origin}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	reason := ReasonInvalidOrigin
	if _, exact := d.published.Exact(p); !exact {
		if _, _, covered := d.published.LongestMatch(p); covered {
			reason = ReasonSubPrefix
		}
	}
	a := Alert{
		Time:   tu.Time,
		PeerAS: tu.PeerAS,
		Prefix: p,
		Origin: origin,
		Path:   append([]asn.ASN(nil), tu.Update.ASPath...),
		Reason: reason,
	}
	d.alerts = append(d.alerts, a)
	if d.onAlert != nil {
		d.onAlert(a)
	}
}

// Alerts returns a copy of all alerts raised so far.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// AlertSetDigest returns a SHA-256 digest over the alert set's identity
// fields — prefix, origin, reporting peer, AS path, reason — sorted
// into a canonical order. Arrival times are deliberately excluded: they
// depend on transport interleaving and retransmission, while the *set*
// of alerts is the detection outcome the chaos suite pins. A run over a
// fault-injected transport must produce a byte-identical digest to the
// fault-free run (see internal/chaos).
func AlertSetDigest(alerts []Alert) [32]byte {
	lines := make([]string, 0, len(alerts))
	for _, a := range alerts {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%v|%v|%v|%s|", a.Prefix, a.Origin, a.PeerAS, a.Reason)
		for i, as := range a.Path {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%v", as)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
