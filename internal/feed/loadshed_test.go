package feed

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// dialRaw opens one collector session over a pipe and completes the
// probe-side handshake by hand, so tests control every subsequent frame.
func dialRaw(t *testing.T, c *Collector, as asn.ASN) (net.Conn, chan error) {
	t.Helper()
	server, client := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- c.HandleSession(server) }()
	if err := bgpwire.WriteMessage(client, &bgpwire.Open{Version: 4, AS: as, HoldTime: 30, RouterID: as.Uint32()}); err != nil {
		t.Fatalf("probe %v: send OPEN: %v", as, err)
	}
	if _, err := bgpwire.ReadMessage(client); err != nil { // collector OPEN
		t.Fatalf("probe %v: read OPEN: %v", as, err)
	}
	if _, err := bgpwire.ReadMessage(client); err != nil { // collector KEEPALIVE
		t.Fatalf("probe %v: read KEEPALIVE: %v", as, err)
	}
	return client, errCh
}

func benignUpdate(origin asn.ASN) *bgpwire.Update {
	return &bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65010, origin}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
	}
}

// waitFor polls cond with a long wall-clock cap; the collector runs on a
// fake clock, so only goroutine scheduling is being waited out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCollectorLoadShedsNoisiest: when the aggregate rate crosses
// MaxLoad, only the noisiest session dies — with ErrSessionShed — and
// quieter sessions keep streaming.
func TestCollectorLoadShedsNoisiest(t *testing.T) {
	c := &Collector{
		LocalAS: 65535, RouterID: 1,
		Clock:      tick.NewFake(),
		MaxLoad:    10,
		LoadWindow: time.Hour,
	}
	loud, loudErr := dialRaw(t, c, 65001)
	quiet, quietErr := dialRaw(t, c, 65002)
	defer quiet.Close()
	defer loud.Close()

	for i := 0; i < 9; i++ {
		if err := bgpwire.WriteMessage(loud, benignUpdate(100)); err != nil {
			t.Fatalf("loud update %d: %v", i, err)
		}
	}
	waitFor(t, "9 updates accounted", func() bool { return c.Stats().Updates == 9 })
	for i := 0; i < 2; i++ {
		if err := bgpwire.WriteMessage(quiet, benignUpdate(100)); err != nil {
			t.Fatalf("quiet update %d: %v", i, err)
		}
	}

	// Update #11 crosses MaxLoad: the loud session (9 in window) is the
	// victim, even though the quiet one triggered the threshold.
	var errLoud error
	select {
	case errLoud = <-loudErr:
	case <-time.After(10 * time.Second):
		t.Fatal("loud session never shed")
	}
	if !errors.Is(errLoud, ErrSessionShed) {
		t.Errorf("loud session error = %v, want ErrSessionShed", errLoud)
	}
	st := c.Stats()
	if st.LoadSheds != 1 || st.Updates != 11 {
		t.Errorf("stats = %+v, want LoadSheds 1 / Updates 11", st)
	}
	loads := c.SessionLoads()
	if len(loads) != 2 {
		t.Fatalf("SessionLoads = %d entries, want 2", len(loads))
	}
	if !loads[0].Shed || loads[0].AS != 65001 || loads[0].Total != 9 {
		t.Errorf("loud load = %+v, want shed with 9 total", loads[0])
	}
	if loads[1].Shed || loads[1].AS != 65002 || loads[1].Total != 2 {
		t.Errorf("quiet load = %+v, want unshed with 2 total", loads[1])
	}

	// The quiet session is still live.
	if err := bgpwire.WriteMessage(quiet, benignUpdate(100)); err != nil {
		t.Fatalf("quiet post-shed update: %v", err)
	}
	waitFor(t, "post-shed update accounted", func() bool { return c.Stats().Updates == 12 })
	quiet.Close()
	if err := <-quietErr; err != nil && !errors.Is(err, ErrSessionShed) {
		// A closed pipe surfaces as a transport error; only a shed would
		// be wrong here.
		_ = err
	}
}

// TestCollectorSelfShed: a single session that alone crosses MaxLoad is
// its own victim — the crossing update is dropped, the peer receives a
// Cease NOTIFICATION.
func TestCollectorSelfShed(t *testing.T) {
	var store rpki.Store
	rs := NewRouteServer(&store)
	c := &Collector{
		LocalAS: 65535, RouterID: 1,
		Clock:      tick.NewFake(),
		MaxLoad:    5,
		LoadWindow: time.Hour,
		Validator:  rs,
	}
	probe, errCh := dialRaw(t, c, 65001)
	defer probe.Close()
	for i := 0; i < 6; i++ {
		if err := bgpwire.WriteMessage(probe, benignUpdate(100)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	msg, err := bgpwire.ReadMessage(probe)
	if err != nil {
		t.Fatalf("read shed NOTIFICATION: %v", err)
	}
	n, ok := msg.(*bgpwire.Notification)
	if !ok || n.Code != 6 {
		t.Errorf("got %T %+v, want Cease NOTIFICATION", msg, msg)
	}
	if err := <-errCh; !errors.Is(err, ErrSessionShed) {
		t.Errorf("session error = %v, want ErrSessionShed", err)
	}
	// The crossing update was dropped before the boundary validator.
	if obs := rs.Stats().Observed; obs != 5 {
		t.Errorf("validator observed %d announcements, want 5 (crossing update dropped)", obs)
	}
	if st := c.Stats(); st.Updates != 6 || st.LoadSheds != 1 {
		t.Errorf("stats = %+v, want Updates 6 / LoadSheds 1", st)
	}
}

// TestCollectorLoadWindowRolls: advancing the fake clock past LoadWindow
// resets the accounting, so a steady in-budget rate never sheds.
func TestCollectorLoadWindowRolls(t *testing.T) {
	fc := tick.NewFake()
	c := &Collector{
		LocalAS: 65535, RouterID: 1,
		Clock:      fc,
		MaxLoad:    10,
		LoadWindow: time.Second,
	}
	probe, errCh := dialRaw(t, c, 65001)
	for i := 0; i < 8; i++ {
		if err := bgpwire.WriteMessage(probe, benignUpdate(100)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	waitFor(t, "first window accounted", func() bool { return c.Stats().Updates == 8 })
	fc.Advance(2 * time.Second)
	for i := 0; i < 8; i++ {
		if err := bgpwire.WriteMessage(probe, benignUpdate(100)); err != nil {
			t.Fatalf("second-window update %d: %v", i, err)
		}
	}
	waitFor(t, "second window accounted", func() bool { return c.Stats().Updates == 16 })
	if st := c.Stats(); st.LoadSheds != 0 {
		t.Errorf("LoadSheds = %d, want 0: the window rolled", st.LoadSheds)
	}
	loads := c.SessionLoads()
	if len(loads) != 1 || loads[0].Window != 8 || loads[0].Total != 16 {
		t.Errorf("SessionLoads = %+v, want one entry with Window 8 / Total 16", loads)
	}
	probe.Close()
	<-errCh
}
