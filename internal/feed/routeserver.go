package feed

import (
	"sync"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// RouteServer applies origin validation once at the collector boundary —
// the IXP route-server / middlebox deployment model ("Keep Your Friends
// Close", PAPERS.md): instead of every probe AS validating independently,
// one validator serves the whole collector and memoizes each distinct
// (prefix, origin) verdict. A burst of identical announcements from
// hundreds of peers then costs one trie lookup, not hundreds; the
// verdicts — and therefore the detector's alert set — are identical to
// per-probe validation, because RFC 6811 validation is a pure function
// of prefix and origin.
//
// RouteServer is itself an rpki.OriginValidator, so a Detector built
// over it shares the memo: set it as both Collector.Validator (boundary
// accounting) and the detector's validator (alerting) to run the full
// route-server mode.
type RouteServer struct {
	validator rpki.OriginValidator

	mu    sync.Mutex
	cache map[routeKey]rpki.Validity
	stats RouteServerStats
}

type routeKey struct {
	p      prefix.Prefix
	origin asn.ASN
}

// RouteServerStats counts the boundary validator's work.
type RouteServerStats struct {
	// Lookups counts underlying validator calls — one per distinct
	// (prefix, origin) pair ever observed.
	Lookups int
	// Hits counts verdicts served from the memo.
	Hits int
	// Observed counts announcements seen via Observe.
	Observed int
	// Invalid counts observed announcements whose verdict was Invalid.
	Invalid int
}

var _ rpki.OriginValidator = (*RouteServer)(nil)

// NewRouteServer wraps v in a memoizing collector-boundary validator.
func NewRouteServer(v rpki.OriginValidator) *RouteServer {
	return &RouteServer{validator: v, cache: make(map[routeKey]rpki.Validity)}
}

// Validate returns the RFC 6811 verdict for (p, origin), consulting the
// underlying validator only on the first sight of the pair.
func (rs *RouteServer) Validate(p prefix.Prefix, origin asn.ASN) rpki.Validity {
	rs.mu.Lock()
	if v, ok := rs.cache[routeKey{p, origin}]; ok {
		rs.stats.Hits++
		rs.mu.Unlock()
		return v
	}
	// The trie lookup runs under mu: the underlying store is not
	// guaranteed concurrency-safe, and the collector already serializes
	// sessions through the detector mutex at comparable cost.
	v := rs.validator.Validate(p, origin)
	rs.cache[routeKey{p, origin}] = v
	rs.stats.Lookups++
	rs.mu.Unlock()
	return v
}

// Observe validates every prefix one update announces, counting Invalid
// verdicts — the per-announcement accounting HandleSession drives when
// the collector runs in route-server mode.
func (rs *RouteServer) Observe(peer asn.ASN, u *bgpwire.Update) {
	origin, ok := u.OriginAS()
	if !ok {
		return // withdrawals carry no origin
	}
	for _, p := range u.NLRI {
		v := rs.Validate(p, origin)
		rs.mu.Lock()
		rs.stats.Observed++
		if v == rpki.Invalid {
			rs.stats.Invalid++
		}
		rs.mu.Unlock()
	}
}

// Stats returns a snapshot of the boundary validator's counters.
func (rs *RouteServer) Stats() RouteServerStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.stats
}
