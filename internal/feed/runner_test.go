package feed

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// TestRunnerBackoffSchedule: with a fake clock and no jitter, the
// reconnect delays must follow the exact capped-exponential schedule —
// base, 2×, 4×, capped — with no wall-clock time passing.
func TestRunnerBackoffSchedule(t *testing.T) {
	fc := tick.NewFake()
	dialErr := errors.New("connection refused")
	r := &ProbeRunner{
		AS: 65001, RouterID: 1,
		Dial:        func() (io.ReadWriteCloser, error) { return nil, dialErr },
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  800 * time.Millisecond,
		MaxAttempts: 6,
		Clock:       fc,
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(context.Background()) }()

	// 6 attempts → 5 sleeps: 100, 200, 400, 800, 800 (capped).
	want := []time.Duration{100, 200, 400, 800, 800}
	for i, w := range want {
		fc.BlockUntilTimers(1)
		d, ok := fc.AdvanceToNext()
		if !ok || d != w*time.Millisecond {
			t.Fatalf("sleep %d = %v (ok=%v), want %v", i+1, d, ok, w*time.Millisecond)
		}
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "giving up after 6") {
			t.Fatalf("Run = %v, want give-up error after 6 attempts", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runner never gave up")
	}
	if st := r.Stats(); st.Dials != 6 {
		t.Errorf("Dials = %d, want 6", st.Dials)
	}
}

// TestRunnerBackoffJitter: a seeded jitter source keeps every delay
// inside [d/2, d) and stays reproducible across runs with the same
// seed.
func TestRunnerBackoffJitter(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		r := &ProbeRunner{
			BackoffBase: 100 * time.Millisecond,
			BackoffMax:  800 * time.Millisecond,
			Jitter:      rand.New(rand.NewSource(seed)),
		}
		var out []time.Duration
		for n := 1; n <= 5; n++ {
			out = append(out, r.backoff(n))
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	full := []time.Duration{100, 200, 400, 800, 800}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("delay %d not reproducible: %v vs %v", i, a[i], b[i])
		}
		d := full[i] * time.Millisecond
		if a[i] < d/2 || a[i] >= d {
			t.Errorf("delay %d = %v outside [%v, %v)", i, a[i], d/2, d)
		}
	}
}

// TestRunnerReconnectsAndRetransmits: when the first session dies under
// the runner, it must reconnect with backoff and re-announce its full
// table, so the collector's detector still sees every update.
func TestRunnerReconnectsAndRetransmits(t *testing.T) {
	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/16"), MaxLength: 24, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(&store, nil)
	det.NotePublished(prefix.MustParse("10.0.0.0/16"))
	collector := &Collector{LocalAS: 65535, RouterID: 1, Detector: det}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// The first accepted session handshakes and then slams the
	// connection shut; later sessions get the real collector.
	var first atomic.Bool
	first.Store(true)
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			doomed := first.CompareAndSwap(true, false)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if doomed {
					if _, err := bgpwire.ReadMessage(conn); err == nil {
						_ = bgpwire.WriteMessage(conn, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 90, RouterID: 1})
						_ = bgpwire.WriteMessage(conn, bgpwire.Keepalive{})
					}
					conn.Close()
					return
				}
				_ = collector.HandleSession(conn)
			}()
		}
	}()

	r := &ProbeRunner{
		AS: 65001, RouterID: 2,
		Dial: func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		},
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	// One benign update and one alert-raiser.
	r.Enqueue(&bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 100}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
	})
	r.Enqueue(&bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 666}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/16")},
	})

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- r.Run(ctx) }()

	deadline := time.Now().Add(20 * time.Second)
	for len(det.Alerts()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert never delivered through reconnects")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-runDone; err != context.Canceled {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
	st := r.Stats()
	if st.Sessions < 2 || st.Reconnects < 1 {
		t.Errorf("stats = %+v, want ≥2 sessions and ≥1 reconnect", st)
	}
	l.Close()
	wg.Wait()
	if n := len(det.Alerts()); n != 1 {
		t.Errorf("alerts = %d, want exactly 1 (retransmissions must deduplicate)", n)
	}
}

// TestEnqueueShedOldest pins the watermark arithmetic without a session:
// every Enqueue past MaxPending sheds the oldest unsent updates down to
// LowPending, never the newest.
func TestEnqueueShedOldest(t *testing.T) {
	r := &ProbeRunner{MaxPending: 8, LowPending: 4}
	for i := 0; i < 20; i++ {
		r.Enqueue(&bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{asn.ASN(i + 1)}, NextHop: 1,
			NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
		})
		if p := r.Pending(); p > r.MaxPending+1 {
			t.Fatalf("pending = %d after enqueue %d, want ≤ %d", p, i, r.MaxPending+1)
		}
	}
	// 20 enqueues: pending hits 9 at #9 (shed 5 → 4), again at #14 and
	// #19 — 15 shed, 5 pending.
	st := r.Stats()
	if st.Shed != 15 || st.Pending != 5 {
		t.Errorf("stats = %+v, want Shed 15 / Pending 5", st)
	}
	// The newest update must have survived every shed.
	r.mu.Lock()
	last := r.queue[len(r.queue)-1]
	r.mu.Unlock()
	if got := last.ASPath[0]; got != 20 {
		t.Errorf("newest queued update is from AS %v, want 20", got)
	}
	// Unbounded runner never sheds.
	u := &ProbeRunner{}
	for i := 0; i < 100; i++ {
		u.Enqueue(&bgpwire.Update{})
	}
	if st := u.Stats(); st.Shed != 0 || st.Pending != 100 {
		t.Errorf("unbounded stats = %+v, want Shed 0 / Pending 100", st)
	}
}

// stalledConn scripts the collector half of a handshake from a buffer,
// lets the probe's OPEN through, and then blocks every later write until
// Close — a collector that accepted the session and stopped reading.
type stalledConn struct {
	mu        sync.Mutex
	script    []byte // collector→probe bytes served by Read
	wrote     int
	stalled   chan struct{} // closed when a post-handshake write blocks
	closed    chan struct{}
	stallOnce sync.Once
	closeOnce sync.Once
}

func newStalledConn(t *testing.T) *stalledConn {
	t.Helper()
	var script bytes.Buffer
	if err := bgpwire.WriteMessage(&script, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 30, RouterID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bgpwire.WriteMessage(&script, bgpwire.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	return &stalledConn{
		script:  script.Bytes(),
		stalled: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (c *stalledConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.script) > 0 {
		n := copy(p, c.script)
		c.script = c.script[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	<-c.closed
	return 0, io.EOF
}

func (c *stalledConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.wrote++
	first := c.wrote == 1
	c.mu.Unlock()
	if first {
		return len(p), nil // the probe's OPEN
	}
	c.stallOnce.Do(func() { close(c.stalled) })
	<-c.closed
	return 0, io.ErrClosedPipe
}

func (c *stalledConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// TestRunnerBoundedUnderStalledTransport: with a collector that stops
// reading mid-session, a MaxPending-bounded runner must keep accepting
// Enqueues at bounded memory, shedding an exactly predictable count —
// all under a fake clock, so no wall time passes and no timer fires.
func TestRunnerBoundedUnderStalledTransport(t *testing.T) {
	fc := tick.NewFake()
	conn := newStalledConn(t)
	r := &ProbeRunner{
		AS: 65001, RouterID: 2,
		Dial: func() (io.ReadWriteCloser, error) {
			select {
			case <-conn.closed:
				return nil, errors.New("no second conn in this test")
			default:
				return conn, nil
			}
		},
		HoldTime:    30,
		MaxAttempts: 1,
		Clock:       fc,
		MaxPending:  8,
		LowPending:  4,
	}
	r.Enqueue(&bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001}, NextHop: 1,
		NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
	})
	done := make(chan error, 1)
	go func() { done <- r.Run(context.Background()) }()

	// Wait until the first update's write is wedged in the stalled
	// transport, so the shed arithmetic below is exact: the in-flight
	// update is pinned, every shed drops 5.
	select {
	case <-conn.stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("session never reached the stalled write")
	}
	for i := 1; i < 100; i++ {
		r.Enqueue(&bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{asn.ASN(i + 1)}, NextHop: 1,
			NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
		})
		if p := r.Pending(); p > r.MaxPending+1 {
			t.Fatalf("pending = %d after enqueue %d, want ≤ %d", p, i, r.MaxPending+1)
		}
	}
	// 100 enqueues against a stalled session: sheds of 5 fire at #9,
	// #14, …, #99 → exactly 95 shed, 5 pending, none sent.
	st := r.Stats()
	if st.Shed != 95 || st.Pending != 5 || st.Sent != 0 {
		t.Errorf("stats = %+v, want Shed 95 / Pending 5 / Sent 0", st)
	}

	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run = nil, want terminal error after the stalled session died")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runner never exited after conn close")
	}
}

// TestRunnerProbeSideHoldTimer: a collector that completes the
// handshake and then falls silent must trip the probe-side hold timer
// — driven entirely by the fake clock.
func TestRunnerProbeSideHoldTimer(t *testing.T) {
	fc := tick.NewFake()
	server, client := net.Pipe()
	defer server.Close()
	// Scripted collector: handshake, then eternal silence (but keep
	// reading so probe writes never block).
	go func() {
		if _, err := bgpwire.ReadMessage(server); err != nil {
			return
		}
		_ = bgpwire.WriteMessage(server, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 30, RouterID: 1})
		_ = bgpwire.WriteMessage(server, bgpwire.Keepalive{})
		for {
			if _, err := bgpwire.ReadMessage(server); err != nil {
				return
			}
		}
	}()

	dialed := make(chan struct{})
	r := &ProbeRunner{
		AS: 65001, RouterID: 2,
		Dial: func() (io.ReadWriteCloser, error) {
			select {
			case <-dialed:
				return nil, errors.New("no second conn in this test")
			default:
			}
			close(dialed)
			return client, nil
		},
		HoldTime:    30,
		MaxAttempts: 1, // surface the session error instead of retrying
		Clock:       fc,
	}
	done := make(chan error, 1)
	go func() { done <- r.Run(context.Background()) }()

	<-dialed
	fc.BlockUntilTimers(2) // session armed hold + keepalive timers
	fc.Advance(31 * time.Second)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "hold timer") {
			t.Fatalf("Run = %v, want probe-side hold expiry", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("probe never tripped its hold timer")
	}
}

// TestRunnerRejectsBadCollectorOpen: Probe.Dial validation — version
// and zero/short hold times — must surface through the runner as
// handshake failures that count against MaxAttempts.
func TestRunnerRejectsBadCollectorOpen(t *testing.T) {
	cases := []struct {
		name string
		open *bgpwire.Open
	}{
		{"version 3", &bgpwire.Open{Version: 3, AS: 65535, HoldTime: 90, RouterID: 1}},
		{"zero hold", &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 0, RouterID: 1}},
		{"hold below floor", &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 2, RouterID: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			server, client := net.Pipe()
			defer server.Close()
			go func() {
				if _, err := bgpwire.ReadMessage(server); err != nil {
					return
				}
				_ = bgpwire.WriteMessage(server, tc.open)
				// No KEEPALIVE: a rejecting probe never reads one, and an
				// unread write would wedge both sides of the pipe. Drain
				// the probe's OPEN-error NOTIFICATION instead.
				for {
					if _, err := bgpwire.ReadMessage(server); err != nil {
						return
					}
				}
			}()
			p := &Probe{AS: 65001, RouterID: 2}
			if err := p.Dial(client); err == nil {
				t.Fatal("Dial accepted a bad collector OPEN")
			}
		})
	}
}

// TestProbeNegotiatedHold: the session hold time is the minimum of both
// offers.
func TestProbeNegotiatedHold(t *testing.T) {
	cases := []struct {
		mine, theirs uint16
		want         time.Duration
	}{
		{90, 30, 30 * time.Second},
		{30, 90, 30 * time.Second},
		{180, 180, 180 * time.Second},
	}
	for _, tc := range cases {
		server, client := net.Pipe()
		go func() {
			if _, err := bgpwire.ReadMessage(server); err != nil {
				return
			}
			_ = bgpwire.WriteMessage(server, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: tc.theirs, RouterID: 1})
			_ = bgpwire.WriteMessage(server, bgpwire.Keepalive{})
			// Keep draining so the probe's Cease write can complete:
			// net.Pipe writes block until read.
			for {
				if _, err := bgpwire.ReadMessage(server); err != nil {
					return
				}
			}
		}()
		p := &Probe{AS: 65001, RouterID: 2, HoldTime: tc.mine}
		if err := p.Dial(client); err != nil {
			t.Fatalf("hold %d/%d: %v", tc.mine, tc.theirs, err)
		}
		if got := p.NegotiatedHold(); got != tc.want {
			t.Errorf("NegotiatedHold(%d,%d) = %v, want %v", tc.mine, tc.theirs, got, tc.want)
		}
		_ = p.Close()
		server.Close()
	}
}

// TestRunnerDrainMode: RunDrain returns once the table is written and
// the collector has been sent a Cease.
func TestRunnerDrainMode(t *testing.T) {
	var store rpki.Store
	det := NewDetector(&store, nil)
	collector := &Collector{LocalAS: 65535, RouterID: 1, Detector: det}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	r := &ProbeRunner{
		AS: 65001, RouterID: 2,
		Dial: func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		},
	}
	for i := 0; i < 3; i++ {
		r.Enqueue(&bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001}, NextHop: 1,
			NLRI: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := r.RunDrain(ctx); err != nil {
		t.Fatalf("RunDrain: %v", err)
	}
	st := r.Stats()
	if st.Sent != 3 || st.Pending != 0 {
		t.Errorf("stats = %+v, want 3 sent / 0 pending", st)
	}
	l.Close()
	if err := collector.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-serveDone
}
