package feed

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

// attackWorld runs one hijack on a synthetic world and returns the pieces
// a feed pipeline needs.
func attackWorld(t *testing.T) (*topology.Graph, *topology.Classification, *core.Outcome, int, int) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(600))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(cg, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	target, err := topology.FindTarget(cg, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Tier1[0]
	o, err := core.NewSolver(pol).Solve(core.Attack{Target: target, Attacker: attacker}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cg, c, o.Clone(), target, attacker
}

func TestFromOutcome(t *testing.T) {
	g, c, o, target, attacker := attackWorld(t)
	contested := mp("129.82.0.0/16")
	probes := detect.TopDegreeProbes(g, 10).Probes
	updates, err := FromOutcome(g, o, contested, prefix.Prefix{}, probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no feed events")
	}
	// Events must be time-ordered and carry plausible AS paths ending at
	// one of the two origins.
	targetASN, attackerASN := g.ASN(target), g.ASN(attacker)
	var last uint32
	for _, tu := range updates {
		if tu.Time < last {
			t.Fatal("events out of order")
		}
		last = tu.Time
		origin, ok := tu.Update.OriginAS()
		if !ok {
			t.Fatal("feed update without origin")
		}
		if origin != targetASN && origin != attackerASN {
			t.Fatalf("feed origin %v is neither target nor attacker", origin)
		}
		if tu.Update.ASPath[0] != tu.PeerAS {
			t.Error("AS path must start at the reporting peer")
		}
	}
	if _, err := FromOutcome(g, o, contested, prefix.Prefix{}, []int{-1}); err == nil {
		t.Error("bad probe index accepted")
	}
	_ = c
}

func TestDetectorRaisesOnHijack(t *testing.T) {
	g, _, o, target, attacker := attackWorld(t)
	contested := mp("129.82.0.0/16")
	targetASN, attackerASN := g.ASN(target), g.ASN(attacker)

	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: contested, MaxLength: 24, Origin: targetASN}); err != nil {
		t.Fatal(err)
	}
	var fired []Alert
	det := NewDetector(&store, func(a Alert) { fired = append(fired, a) })
	det.NotePublished(contested)

	probes := detect.TopDegreeProbes(g, 16).Probes
	updates, err := FromOutcome(g, o, contested, prefix.Prefix{}, probes)
	if err != nil {
		t.Fatal(err)
	}
	sawBogus := false
	for _, tu := range updates {
		if origin, _ := tu.Update.OriginAS(); origin == attackerASN {
			sawBogus = true
		}
		det.Process(tu)
	}
	if !sawBogus {
		t.Skip("no probe selected the bogus route in this world")
	}
	alerts := det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (deduplicated)", len(alerts))
	}
	a := alerts[0]
	if a.Origin != attackerASN || a.Prefix != contested || a.Reason != ReasonInvalidOrigin {
		t.Errorf("alert = %+v", a)
	}
	if len(fired) != len(alerts) {
		t.Error("callback count mismatch")
	}
	// Legitimate announcements must not alert.
	for _, a := range alerts {
		if a.Origin == targetASN {
			t.Error("alert raised for the legitimate origin")
		}
	}
}

func TestDetectorSubPrefixClassification(t *testing.T) {
	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: mp("129.82.0.0/16"), MaxLength: 16, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(&store, nil)
	det.NotePublished(mp("129.82.0.0/16"))
	det.Process(TimedUpdate{
		PeerAS: 7,
		Update: &bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{7, 666}, NextHop: 1,
			NLRI: []prefix.Prefix{mp("129.82.4.0/24")},
		},
	})
	alerts := det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if alerts[0].Reason != ReasonSubPrefix {
		t.Errorf("reason = %v, want subprefix", alerts[0].Reason)
	}
}

func TestDetectorIgnoresUnpublishedAndWithdrawals(t *testing.T) {
	var store rpki.Store
	det := NewDetector(&store, nil)
	det.Process(TimedUpdate{
		PeerAS: 7,
		Update: &bgpwire.Update{
			Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{7, 666}, NextHop: 1,
			NLRI: []prefix.Prefix{mp("10.0.0.0/8")},
		},
	})
	det.Process(TimedUpdate{
		PeerAS: 7,
		Update: &bgpwire.Update{Withdrawn: []prefix.Prefix{mp("10.0.0.0/8")}},
	})
	if n := len(det.Alerts()); n != 0 {
		t.Errorf("alerts on unpublished space / withdrawals: %d", n)
	}
}

// TestCollectorEndToEnd runs the full pipeline over real TCP: probes dial
// the collector, stream a hijack's feed, and the detector raises the
// alert.
func TestCollectorEndToEnd(t *testing.T) {
	g, _, o, target, attacker := attackWorld(t)
	contested := mp("129.82.0.0/16")
	targetASN, attackerASN := g.ASN(target), g.ASN(attacker)

	var store rpki.Store
	if err := store.Add(rpki.ROA{Prefix: contested, MaxLength: 24, Origin: targetASN}); err != nil {
		t.Fatal(err)
	}
	alertCh := make(chan Alert, 16)
	det := NewDetector(&store, func(a Alert) { alertCh <- a })
	det.NotePublished(contested)

	collector := &Collector{LocalAS: 65535, RouterID: 1, Detector: det}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	probes := detect.TopDegreeProbes(g, 12).Probes
	updates, err := FromOutcome(g, o, contested, prefix.Prefix{}, probes)
	if err != nil {
		t.Fatal(err)
	}
	sawBogus := false
	var wg sync.WaitGroup
	for _, pr := range probes {
		peerUpdates := make([]*bgpwire.Update, 0, 1)
		for _, tu := range updates {
			if tu.PeerAS == g.ASN(pr) {
				peerUpdates = append(peerUpdates, tu.Update)
				if origin, _ := tu.Update.OriginAS(); origin == attackerASN {
					sawBogus = true
				}
			}
		}
		if len(peerUpdates) == 0 {
			continue
		}
		wg.Add(1)
		go func(as asn.ASN, us []*bgpwire.Update) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			p := &Probe{AS: as, RouterID: uint32(as)}
			if err := p.Dial(conn); err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			for _, u := range us {
				if err := p.Send(u); err != nil {
					t.Error(err)
					return
				}
			}
		}(g.ASN(pr), peerUpdates)
	}
	wg.Wait()
	if !sawBogus {
		l.Close()
		<-serveDone
		t.Skip("no probe carried the bogus route in this world")
	}
	select {
	case a := <-alertCh:
		if a.Origin != attackerASN {
			t.Errorf("alert origin = %v, want %v", a.Origin, attackerASN)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert within 5s")
	}
	_ = collector.Shutdown(context.Background())
	l.Close()
	<-serveDone
	if collector.Sessions() == 0 {
		t.Error("collector accepted no sessions")
	}
}

func TestProbeHandshakeErrors(t *testing.T) {
	// A server that immediately closes: Dial must fail cleanly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := &Probe{AS: 65001}
	if err := p.Dial(conn); err == nil {
		t.Error("handshake against closing server succeeded")
	}
	if err := p.Send(&bgpwire.Update{}); err == nil {
		t.Error("Send without session succeeded")
	}
}

// TestCollectorRecordsMRT: the collector's MRT recorder must log every
// received UPDATE as a BGP4MP record readable by the mrt package.
func TestCollectorRecordsMRT(t *testing.T) {
	var store rpki.Store
	var log bytes.Buffer
	collector := &Collector{
		LocalAS:  65535,
		RouterID: 1,
		Detector: NewDetector(&store, nil),
		Recorder: mrt.NewWriter(&log, 0),
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := &Probe{AS: 65001, RouterID: 2}
	if err := p.Dial(conn); err != nil {
		t.Fatal(err)
	}
	updates := []*bgpwire.Update{
		{Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, 12145}, NextHop: 1,
			NLRI: []prefix.Prefix{mp("129.82.0.0/16")}},
		{Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001}, NextHop: 1,
			NLRI: []prefix.Prefix{mp("192.0.2.0/24")}},
	}
	for _, u := range updates {
		if err := p.Send(u); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	l.Close()
	_ = collector.Shutdown(context.Background())
	<-serveDone
	if err := collector.Recorder.Flush(); err != nil {
		t.Fatal(err)
	}

	r := mrt.NewReader(bytes.NewReader(log.Bytes()))
	var recorded []*mrt.BGP4MPMessage
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if m, ok := rec.(*mrt.BGP4MPMessage); ok {
			recorded = append(recorded, m)
		}
	}
	if len(recorded) != len(updates) {
		t.Fatalf("recorded %d BGP4MP records, want %d", len(recorded), len(updates))
	}
	for i, m := range recorded {
		if m.PeerAS != 65001 || m.LocalAS != 65535 {
			t.Errorf("record %d: peer/local AS = %v/%v", i, m.PeerAS, m.LocalAS)
		}
		u, ok := m.Message.(*bgpwire.Update)
		if !ok {
			t.Fatalf("record %d: message is %T", i, m.Message)
		}
		if len(u.NLRI) != 1 || u.NLRI[0] != updates[i].NLRI[0] {
			t.Errorf("record %d: NLRI mismatch", i)
		}
	}
}

// TestCollectorFailureInjection: malformed and mid-session garbage must
// error the one session, never crash or wedge the collector.
func TestCollectorFailureInjection(t *testing.T) {
	var store rpki.Store
	collector := &Collector{LocalAS: 65535, RouterID: 1, Detector: NewDetector(&store, nil)}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	// Session 1: raw garbage instead of an OPEN.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("definitely not BGP at all, sorry")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Session 2: valid OPEN, then a KEEPALIVE-typed frame with a body.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := bgpwire.WriteMessage(conn2, &bgpwire.Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 2}); err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, bgpwire.HeaderLen+3)
	for i := 0; i < 16; i++ {
		bad[i] = 0xff
	}
	bad[17] = byte(len(bad))
	bad[18] = bgpwire.TypeKeepalive
	if _, err := conn2.Write(bad); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// Session 3: a healthy session must still work after the carnage.
	conn3, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := &Probe{AS: 65002, RouterID: 3}
	if err := p.Dial(conn3); err != nil {
		t.Fatalf("healthy session failed after garbage sessions: %v", err)
	}
	if err := p.Send(&bgpwire.Update{
		Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65002}, NextHop: 1,
		NLRI: []prefix.Prefix{mp("192.0.2.0/24")},
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	l.Close()
	_ = collector.Shutdown(context.Background())
	<-serveDone
	if collector.Sessions() < 3 {
		t.Errorf("sessions = %d, want ≥ 3", collector.Sessions())
	}
}
