package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestBuildWorldGenerated(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-scale", "300", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.N() < 250 {
		t.Errorf("N = %d", w.Graph.N())
	}
	if !w.Policy.Tier1ShortestPath() {
		t.Error("tier-1 SPF should default on")
	}
	Describe(w) // must not panic
}

func TestBuildWorldNoSPF(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-scale", "200", "-no-tier1-spf"}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Policy.Tier1ShortestPath() {
		t.Error("-no-tier1-spf did not take effect")
	}
}

func TestBuildWorldFromTopoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.txt")
	content := "1|2|0\n1|10|-1\n2|11|-1\n10|20|-1\n11|21|-1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-topo", path}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.N() != 6 {
		t.Errorf("N = %d, want 6", w.Graph.N())
	}
}

// shardFlagSet builds a quiet FlagSet carrying the shard flags.
func shardFlagSet() (*flag.FlagSet, *ShardFlags) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, AddShardFlags(fs)
}

// TestLevelFlagValidation: -level is rejected at flag-parse time when
// outside gzip's 1..9, with an error naming the flag.
func TestLevelFlagValidation(t *testing.T) {
	for _, bad := range []string{"0", "10", "-3", "fast", ""} {
		fs, _ := shardFlagSet()
		err := fs.Parse([]string{"-level", bad})
		if err == nil {
			t.Errorf("-level %q accepted at parse time", bad)
			continue
		}
		if !strings.Contains(err.Error(), "level") {
			t.Errorf("-level %q: error %q does not name the flag", bad, err)
		}
	}
	for lvl := 1; lvl <= 9; lvl++ {
		fs, sf := shardFlagSet()
		if err := fs.Parse([]string{"-level", strconv.Itoa(lvl), "-format", "recio"}); err != nil {
			t.Fatalf("-level %d rejected: %v", lvl, err)
		}
		if int(*sf.Level) != lvl {
			t.Fatalf("-level %d parsed as %d", lvl, *sf.Level)
		}
		store := sf.Store("t", 1, 4)
		if store.Level != lvl {
			t.Fatalf("-level %d not threaded into ShardStore (got %d)", lvl, store.Level)
		}
	}
}

// TestLevelFlagModeChecks: -level with the uncompressed json format is
// a mode error; with recio formats it passes.
func TestLevelFlagModeChecks(t *testing.T) {
	fs, sf := shardFlagSet()
	if err := fs.Parse([]string{"-level", "5"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sf.Mode(); err == nil {
		t.Error("-level with the default json format accepted")
	}
	for _, format := range []string{"recio", "recio-col"} {
		fs, sf := shardFlagSet()
		if err := fs.Parse([]string{"-level", "5", "-format", format, "-shard", "0/2", "-shard-dir", t.TempDir()}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sf.Mode(); err != nil {
			t.Errorf("-level 5 -format %s rejected: %v", format, err)
		}
	}
}

func TestBuildWorldErrors(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-topo", "/nonexistent/file"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.BuildWorld(); err == nil {
		t.Error("missing topo file accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not|a|topology|at|all|x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	wf2 := AddWorldFlags(fs2)
	if err := fs2.Parse([]string{"-topo", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := wf2.BuildWorld(); err == nil {
		t.Error("malformed topo file accepted")
	}
}
