package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestBuildWorldGenerated(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-scale", "300", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.N() < 250 {
		t.Errorf("N = %d", w.Graph.N())
	}
	if !w.Policy.Tier1ShortestPath() {
		t.Error("tier-1 SPF should default on")
	}
	Describe(w) // must not panic
}

func TestBuildWorldNoSPF(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-scale", "200", "-no-tier1-spf"}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Policy.Tier1ShortestPath() {
		t.Error("-no-tier1-spf did not take effect")
	}
}

func TestBuildWorldFromTopoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.txt")
	content := "1|2|0\n1|10|-1\n2|11|-1\n10|20|-1\n11|21|-1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-topo", path}); err != nil {
		t.Fatal(err)
	}
	w, err := wf.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.N() != 6 {
		t.Errorf("N = %d, want 6", w.Graph.N())
	}
}

func TestBuildWorldErrors(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	wf := AddWorldFlags(fs)
	if err := fs.Parse([]string{"-topo", "/nonexistent/file"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.BuildWorld(); err == nil {
		t.Error("missing topo file accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not|a|topology|at|all|x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	wf2 := AddWorldFlags(fs2)
	if err := fs2.Parse([]string{"-topo", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := wf2.BuildWorld(); err == nil {
		t.Error("malformed topo file accepted")
	}
}
