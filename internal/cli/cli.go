// Package cli holds the flag plumbing shared by the cmd/ tools: every
// tool runs against a World that is either generated (-scale/-seed) or
// loaded from a CAIDA AS-relationship file (-topo).
package cli

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// WorldFlags declares the shared topology flags on a FlagSet.
type WorldFlags struct {
	Scale    *int
	Seed     *int64
	TopoFile *string
	NoSPF    *bool
}

// AddWorldFlags registers -scale, -seed, -topo and -no-tier1-spf.
func AddWorldFlags(fs *flag.FlagSet) *WorldFlags {
	return &WorldFlags{
		Scale:    fs.Int("scale", 5000, "approximate AS count for the generated internet (42697 = paper scale)"),
		Seed:     fs.Int64("seed", 1, "topology generator seed"),
		TopoFile: fs.String("topo", "", "CAIDA AS-relationship file to load instead of generating"),
		NoSPF:    fs.Bool("no-tier1-spf", false, "disable the tier-1 shortest-path import override"),
	}
}

// AddWorkersFlag registers -workers. Every sweep-backed experiment accepts
// a worker count; results are bit-identical at any value, so the flag only
// trades wall-clock time for cores.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel solver workers (0 = all CPUs); any value gives identical results")
}

// BuildWorld materializes the World the flags describe.
func (f *WorldFlags) BuildWorld() (*experiments.World, error) {
	var opts []core.PolicyOption
	if *f.NoSPF {
		opts = append(opts, core.WithTier1ShortestPath(false))
	}
	if *f.TopoFile != "" {
		fh, err := os.Open(*f.TopoFile)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		g, err := topology.Parse(fh)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *f.TopoFile, err)
		}
		return experiments.WorldFromGraph(g, opts...)
	}
	p := topology.DefaultParams(*f.Scale)
	p.Seed = *f.Seed
	return experiments.NewWorldWithParams(p, opts...)
}

// Describe prints a one-line world summary to stderr so experiment output
// stays clean on stdout.
func Describe(w *experiments.World) {
	fmt.Fprintf(os.Stderr, "world: %d ASes, %d links, %d tier-1s, %d tier-2s, max depth %d, %d transit\n",
		w.Graph.N(), w.Graph.Edges(), len(w.Class.Tier1), len(w.Class.Tier2),
		w.Class.MaxDepth(), len(w.Graph.TransitNodes()))
}
