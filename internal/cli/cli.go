// Package cli holds the flag plumbing shared by the cmd/ tools: every
// tool runs against a World that is either generated (-scale/-seed) or
// loaded from a CAIDA AS-relationship file (-topo).
package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// WorldFlags declares the shared topology flags on a FlagSet.
type WorldFlags struct {
	Scale    *int
	Seed     *int64
	TopoFile *string
	NoSPF    *bool
}

// AddWorldFlags registers -scale, -seed, -topo and -no-tier1-spf.
func AddWorldFlags(fs *flag.FlagSet) *WorldFlags {
	return &WorldFlags{
		Scale:    fs.Int("scale", 5000, "approximate AS count for the generated internet (42697 = paper scale)"),
		Seed:     fs.Int64("seed", 1, "topology generator seed"),
		TopoFile: fs.String("topo", "", "CAIDA AS-relationship file to load instead of generating"),
		NoSPF:    fs.Bool("no-tier1-spf", false, "disable the tier-1 shortest-path import override"),
	}
}

// AddWorkersFlag registers -workers. Every sweep-backed experiment accepts
// a worker count; results are bit-identical at any value, so the flag only
// trades wall-clock time for cores.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel solver workers (0 = all CPUs); any value gives identical results")
}

// ShardFlags is the multi-process matrix plumbing shared by the scan
// tools: `-shard i/n -shard-dir d` solves one cell-range slice of every
// experiment the invocation covers and writes it as a JSON shard file;
// `-merge -shard-dir d` loads all slices back and reduces them into the
// exact result a single-process run would print. World and experiment
// flags must match across the shard and merge invocations.
type ShardFlags struct {
	Spec  *string
	Dir   *string
	Merge *bool
}

// AddShardFlags registers -shard, -shard-dir and -merge.
func AddShardFlags(fs *flag.FlagSet) *ShardFlags {
	return &ShardFlags{
		Spec:  fs.String("shard", "", `solve only shard "i/n" of each sweep, writing records to -shard-dir instead of rendering results`),
		Dir:   fs.String("shard-dir", "", "directory holding shard files (written with -shard, read with -merge)"),
		Merge: fs.Bool("merge", false, "merge the shard files in -shard-dir instead of solving"),
	}
}

// ShardMode says which of the three run shapes the flags select.
type ShardMode int

const (
	// RunFull solves and renders in one process (no shard flags).
	RunFull ShardMode = iota
	// RunShard solves one shard and writes it to the shard directory.
	RunShard
	// RunMerge reads shard files and renders the merged result.
	RunMerge
)

// Mode validates the flag combination and returns the run shape plus the
// parsed shard selection (meaningful only for RunShard).
func (f *ShardFlags) Mode() (ShardMode, sweep.ShardSel, error) {
	switch {
	case *f.Merge && *f.Spec != "":
		return RunFull, sweep.ShardSel{}, fmt.Errorf("-merge and -shard are mutually exclusive")
	case *f.Merge:
		if *f.Dir == "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-merge needs -shard-dir")
		}
		return RunMerge, sweep.ShardSel{}, nil
	case *f.Spec != "":
		sel, err := sweep.ParseShardSel(*f.Spec)
		if err != nil {
			return RunFull, sweep.ShardSel{}, err
		}
		if *f.Dir == "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-shard needs -shard-dir")
		}
		return RunShard, sel, nil
	default:
		if *f.Dir != "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-shard-dir needs -shard or -merge")
		}
		return RunFull, sweep.ShardSel{}, nil
	}
}

// WriteShard persists one shard file into dir as
// "<experiment>.<shard>of<shards>.json" and reports the path on stderr.
func WriteShard[T any](dir string, sf *sweep.ShardFile[T]) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.%dof%d.json", sf.Experiment, sf.Shard, sf.Shards))
	if err := sweep.WriteShardFileTo(path, sf); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard %d/%d (cells [%d,%d)) written to %s\n",
		sf.Shard, sf.Shards, sf.CellLo, sf.CellHi, path)
	return nil
}

// ReadShards loads every "<tag>.*.json" shard file from dir; MergeShards
// validates the set tiles the experiment's cell space.
func ReadShards[T any](dir, tag string) ([]*sweep.ShardFile[T], error) {
	paths, err := filepath.Glob(filepath.Join(dir, tag+".*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("merge %s: no %s.*.json shard files in %s", tag, tag, dir)
	}
	sort.Strings(paths)
	return sweep.ReadShardFiles[T](paths)
}

// BuildWorld materializes the World the flags describe.
func (f *WorldFlags) BuildWorld() (*experiments.World, error) {
	var opts []core.PolicyOption
	if *f.NoSPF {
		opts = append(opts, core.WithTier1ShortestPath(false))
	}
	if *f.TopoFile != "" {
		fh, err := os.Open(*f.TopoFile)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		g, err := topology.Parse(fh)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *f.TopoFile, err)
		}
		return experiments.WorldFromGraph(g, opts...)
	}
	p := topology.DefaultParams(*f.Scale)
	p.Seed = *f.Seed
	return experiments.NewWorldWithParams(p, opts...)
}

// Describe prints a one-line world summary to stderr so experiment output
// stays clean on stdout.
func Describe(w *experiments.World) {
	fmt.Fprintf(os.Stderr, "world: %d ASes, %d links, %d tier-1s, %d tier-2s, max depth %d, %d transit\n",
		w.Graph.N(), w.Graph.Edges(), len(w.Class.Tier1), len(w.Class.Tier2),
		w.Class.MaxDepth(), len(w.Graph.TransitNodes()))
}
