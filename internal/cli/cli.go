// Package cli holds the flag plumbing shared by the cmd/ tools: every
// tool runs against a World that is either generated (-scale/-seed) or
// loaded from a CAIDA AS-relationship file (-topo).
package cli

import (
	"compress/gzip"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// WorldFlags declares the shared topology flags on a FlagSet.
type WorldFlags struct {
	Scale    *int
	Seed     *int64
	TopoFile *string
	NoSPF    *bool
}

// AddWorldFlags registers -scale, -seed, -topo and -no-tier1-spf.
func AddWorldFlags(fs *flag.FlagSet) *WorldFlags {
	return &WorldFlags{
		Scale:    fs.Int("scale", 5000, "approximate AS count for the generated internet (42697 = paper scale)"),
		Seed:     fs.Int64("seed", 1, "topology generator seed"),
		TopoFile: fs.String("topo", "", "CAIDA AS-relationship file to load instead of generating"),
		NoSPF:    fs.Bool("no-tier1-spf", false, "disable the tier-1 shortest-path import override"),
	}
}

// AddWorkersFlag registers -workers. Every sweep-backed experiment accepts
// a worker count; results are bit-identical at any value, so the flag only
// trades wall-clock time for cores.
func AddWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel solver workers (0 = all CPUs); any value gives identical results")
}

// ServeFlags configures a long-running query service (cmd/hijackd).
type ServeFlags struct {
	Listen    *string
	Backlog   *int
	SnapCache *int
}

// AddServeFlags registers -listen, -backlog and -snapshot-cache.
func AddServeFlags(fs *flag.FlagSet) *ServeFlags {
	return &ServeFlags{
		Listen:    fs.String("listen", "127.0.0.1:8642", "address to serve the query API on (host:0 picks a free port)"),
		Backlog:   fs.Int("backlog", 0, "admitted queries that may wait beyond the solving workers before shedding (0 = 2×workers, negative = none)"),
		SnapCache: fs.Int("snapshot-cache", 0, "baseline snapshots cached per epoch (0 = 64)"),
	}
}

// ScenarioFlags selects the attack scenario and deployed defense
// mechanisms for scan tools. The defaults ("origin", "") reproduce the
// paper's model — and its workload digests — exactly.
type ScenarioFlags struct {
	Scenario *string
	Defense  *string
}

// AddScenarioFlags registers -scenario and -defense.
func AddScenarioFlags(fs *flag.FlagSet) *ScenarioFlags {
	return &ScenarioFlags{
		Scenario: fs.String("scenario", "", `attack scenario: "origin" (default), "forged-origin" or "route-leak"`),
		Defense:  fs.String("defense", "", `deployed defense mechanisms, '+'-joined: "rov", "aspa", "peerlock" (tool default when empty)`),
	}
}

// Parse resolves the flags into an attack kind and a mechanism mask.
// An empty -defense yields mechs = 0; callers apply their tool default.
func (f *ScenarioFlags) Parse() (core.AttackKind, core.DefenseMech, error) {
	kind, err := core.ParseAttackKind(*f.Scenario)
	if err != nil {
		return 0, 0, err
	}
	mechs, err := core.ParseDefenseMech(*f.Defense)
	if err != nil {
		return 0, 0, err
	}
	return kind, mechs, nil
}

// ShardFlags is the multi-process matrix plumbing shared by the scan
// tools: `-shard i/n -shard-dir d` solves one cell-range slice of every
// experiment the invocation covers and writes it as a JSON shard file;
// `-merge -shard-dir d` loads all slices back and reduces them into the
// exact result a single-process run would print. World and experiment
// flags must match across the shard and merge invocations.
type ShardFlags struct {
	Spec   *string
	Dir    *string
	Merge  *bool
	Format *string
	Resume *bool
	Level  *GzipLevel
}

// GzipLevel is the -level flag: a gzip compression level validated at
// flag-parse time, so an out-of-range value fails before any topology
// is built or file touched. The zero value means "codec default".
type GzipLevel int

// String implements flag.Value.
func (l *GzipLevel) String() string {
	if l == nil || *l == 0 {
		return ""
	}
	return strconv.Itoa(int(*l))
}

// Set implements flag.Value, rejecting anything outside gzip's 1..9.
// The flag package prefixes the returned error with the flag's name.
func (l *GzipLevel) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("-level wants an integer gzip level, got %q", s)
	}
	if n < gzip.BestSpeed || n > gzip.BestCompression {
		return fmt.Errorf("-level %d is outside gzip's %d (fastest) .. %d (smallest)",
			n, gzip.BestSpeed, gzip.BestCompression)
	}
	*l = GzipLevel(n)
	return nil
}

// AddShardFlags registers -shard, -shard-dir, -merge, -format, -resume
// and -level.
func AddShardFlags(fs *flag.FlagSet) *ShardFlags {
	f := &ShardFlags{
		Spec:   fs.String("shard", "", `solve only shard "i/n" of each sweep, writing records to -shard-dir instead of rendering results`),
		Dir:    fs.String("shard-dir", "", "directory holding shard files (written with -shard, read with -merge)"),
		Merge:  fs.Bool("merge", false, "merge the shard files in -shard-dir instead of solving"),
		Format: fs.String("format", sweep.FormatJSON, `shard file format: "json" (indented, human-readable), "recio" (compressed binary, checkpointed) or "recio-col" (recio with per-field columns)`),
		Resume: fs.Bool("resume", false, "continue an interrupted -shard run from its last checkpoint (recio format only)"),
		Level:  new(GzipLevel),
	}
	fs.Var(f.Level, "level", "gzip level 1..9 for recio shard files (default: fastest)")
	return f
}

// ShardMode says which of the three run shapes the flags select.
type ShardMode int

const (
	// RunFull solves and renders in one process (no shard flags).
	RunFull ShardMode = iota
	// RunShard solves one shard and writes it to the shard directory.
	RunShard
	// RunMerge reads shard files and renders the merged result.
	RunMerge
)

// Mode validates the flag combination and returns the run shape plus the
// parsed shard selection (meaningful only for RunShard).
func (f *ShardFlags) Mode() (ShardMode, sweep.ShardSel, error) {
	if err := sweep.CheckFormat(*f.Format); err != nil {
		return RunFull, sweep.ShardSel{}, err
	}
	if *f.Level != 0 && (*f.Format == "" || *f.Format == sweep.FormatJSON) {
		return RunFull, sweep.ShardSel{}, fmt.Errorf("-level only applies to the recio formats; json shards are not compressed")
	}
	switch {
	case *f.Merge && *f.Spec != "":
		return RunFull, sweep.ShardSel{}, fmt.Errorf("-merge and -shard are mutually exclusive")
	case *f.Merge:
		if *f.Dir == "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-merge needs -shard-dir")
		}
		if *f.Resume {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-resume only applies to -shard runs")
		}
		return RunMerge, sweep.ShardSel{}, nil
	case *f.Spec != "":
		sel, err := sweep.ParseShardSel(*f.Spec)
		if err != nil {
			return RunFull, sweep.ShardSel{}, err
		}
		if *f.Dir == "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-shard needs -shard-dir")
		}
		if *f.Resume && *f.Format != sweep.FormatRecio {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-resume needs -format recio: json shards are written whole at the end and leave nothing to resume")
		}
		return RunShard, sel, nil
	default:
		if *f.Dir != "" {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-shard-dir needs -shard or -merge")
		}
		if *f.Resume {
			return RunFull, sweep.ShardSel{}, fmt.Errorf("-resume needs -shard and -shard-dir")
		}
		return RunFull, sweep.ShardSel{}, nil
	}
}

// Store materializes the ShardStore the flags describe, stamping the
// run's provenance (tool name, topology seed, worker count) into the
// shard-file header.
func (f *ShardFlags) Store(tool string, seed int64, workers int) sweep.ShardStore {
	return sweep.ShardStore{
		Dir:     *f.Dir,
		Format:  *f.Format,
		Resume:  *f.Resume,
		Level:   int(*f.Level),
		Tool:    tool,
		Seed:    seed,
		Workers: workers,
	}
}

// NoteShard reports a completed shard write on stderr, including how
// much of it a resumed run recovered instead of re-solving.
func NoteShard(rep sweep.ShardReport) {
	if rep.Resumed > 0 {
		how := "checkpoint replay"
		if rep.SeekResume {
			how = "index seek"
		}
		fmt.Fprintf(os.Stderr, "shard cells [%d,%d): %d records resumed via %s, %d solved, written to %s\n",
			rep.CellLo, rep.CellHi, rep.Resumed, how, rep.Solved, rep.Path)
		return
	}
	fmt.Fprintf(os.Stderr, "shard cells [%d,%d): %d records written to %s\n",
		rep.CellLo, rep.CellHi, rep.Solved, rep.Path)
}

// ReadShards loads every shard file of one experiment tag from dir —
// JSON and recio alike; MergeShards validates the set tiles the
// experiment's cell space and carries one matrix digest.
func ReadShards[T any](dir, tag string) ([]*sweep.ShardFile[T], error) {
	return sweep.ReadShardDir[T](dir, tag)
}

// BuildWorld materializes the World the flags describe.
func (f *WorldFlags) BuildWorld() (*experiments.World, error) {
	var opts []core.PolicyOption
	if *f.NoSPF {
		opts = append(opts, core.WithTier1ShortestPath(false))
	}
	if *f.TopoFile != "" {
		fh, err := os.Open(*f.TopoFile)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		g, err := topology.Parse(fh)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", *f.TopoFile, err)
		}
		return experiments.WorldFromGraph(g, opts...)
	}
	p := topology.DefaultParams(*f.Scale)
	p.Seed = *f.Seed
	return experiments.NewWorldWithParams(p, opts...)
}

// Describe prints a one-line world summary to stderr so experiment output
// stays clean on stdout.
func Describe(w *experiments.World) {
	fmt.Fprintf(os.Stderr, "world: %d ASes, %d links, %d tier-1s, %d tier-2s, max depth %d, %d transit\n",
		w.Graph.N(), w.Graph.Edges(), len(w.Class.Tier1), len(w.Class.Tier2),
		w.Class.MaxDepth(), len(w.Graph.TransitNodes()))
}
