package cli

import (
	"flag"
	"fmt"

	"github.com/bgpsim/bgpsim/internal/firehose"
)

// ReplayFlags declares the MRT-replay tuning knobs shared by tools that
// drive a firehose.Engine: session pooling, pacing, per-session
// backpressure bounds, input damage tolerance and the BGP hold time.
type ReplayFlags struct {
	Sessions        *int
	Speed           *float64
	MaxPending      *int
	LowPending      *int
	MalformedBudget *int
	Hold            *uint
}

// AddReplayFlags registers -sessions, -speed, -max-pending,
// -low-pending, -malformed-budget and -hold.
func AddReplayFlags(fs *flag.FlagSet) *ReplayFlags {
	return &ReplayFlags{
		Sessions:        fs.Int("sessions", 0, "cap on concurrent probe sessions (0 = one per distinct peer AS)"),
		Speed:           fs.Float64("speed", 0, "pace the replay by BGP4MP timestamps: 1 = real time, 2 = twice as fast, 0 = maximum speed"),
		MaxPending:      fs.Int("max-pending", 4096, "per-session unsent-update bound; oldest updates are shed (and counted) past it (0 = unbounded)"),
		LowPending:      fs.Int("low-pending", 0, "queue depth a shed drains to once -max-pending trips (0 = half of -max-pending)"),
		MalformedBudget: fs.Int("malformed-budget", 0, "unknown/undecodable MRT records tolerated per input file (0 = default 64, negative = unlimited)"),
		Hold:            fs.Uint("hold", uint(0), "hold time offered in OPEN, in seconds (0 = collector default, RFC 4271 minimum 3)"),
	}
}

// Apply validates the flag values and copies them into cfg. The
// remaining Config fields (inputs, Dial, retry policy, clock) stay the
// caller's business.
func (f *ReplayFlags) Apply(cfg *firehose.Config) error {
	switch {
	case *f.Hold > 65535:
		return fmt.Errorf("-hold %d does not fit the OPEN message's 16-bit field", *f.Hold)
	case *f.Hold != 0 && *f.Hold < 3:
		return fmt.Errorf("-hold %d is below the RFC 4271 floor of 3 seconds", *f.Hold)
	case *f.Speed < 0:
		return fmt.Errorf("-speed %g: negative replay speeds do not exist", *f.Speed)
	case *f.Sessions < 0:
		return fmt.Errorf("-sessions %d: want 0 (per-peer) or a positive cap", *f.Sessions)
	case *f.MaxPending < 0:
		return fmt.Errorf("-max-pending %d: want 0 (unbounded) or a positive bound", *f.MaxPending)
	case *f.LowPending < 0 || (*f.MaxPending > 0 && *f.LowPending > *f.MaxPending):
		return fmt.Errorf("-low-pending %d: want 0 (half of -max-pending) up to -max-pending", *f.LowPending)
	}
	cfg.Sessions = *f.Sessions
	cfg.Speed = *f.Speed
	cfg.MaxPending = *f.MaxPending
	cfg.LowPending = *f.LowPending
	cfg.MalformedBudget = *f.MalformedBudget
	cfg.HoldTime = uint16(*f.Hold)
	return nil
}
