package core

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// deltaTestPolicy builds a contracted random topology and its policy.
func deltaTestPolicy(t testing.TB, n int, seed int64, opts ...PolicyOption) *Policy {
	t.Helper()
	p := topology.DefaultParams(n)
	p.Seed = seed
	g := topology.MustGenerate(p)
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	cc := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := NewPolicy(cg, cc.Tier1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// requireSameOutcome compares a DeltaOutcome against a full Outcome node
// by node across every accessor the query layer reads.
func requireSameOutcome(t *testing.T, label string, want *Outcome, got *DeltaOutcome) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s: node count %d vs %d", label, got.N(), want.N())
	}
	for i := 0; i < want.N(); i++ {
		if want.HasRoute(i) != got.HasRoute(i) ||
			want.Class(i) != got.Class(i) ||
			want.Dist(i) != got.Dist(i) ||
			want.NextHop(i) != got.NextHop(i) ||
			want.Origin(i) != got.Origin(i) {
			t.Fatalf("%s: node %d diverged: full (route=%v class=%v dist=%d nh=%d org=%d) delta (route=%v class=%v dist=%d nh=%d org=%d)",
				label, i,
				want.HasRoute(i), want.Class(i), want.Dist(i), want.NextHop(i), want.Origin(i),
				got.HasRoute(i), got.Class(i), got.Dist(i), got.NextHop(i), got.Origin(i))
		}
	}
	if want.PollutedCount() != got.PollutedCount() {
		t.Fatalf("%s: polluted %d vs full %d", label, got.PollutedCount(), want.PollutedCount())
	}
}

// TestDeltaSolveMatchesFull pins the delta repair against a from-scratch
// solve for every attack kind × defense mechanism over random
// topologies, exercising the snapshot reuse across defenses.
func TestDeltaSolveMatchesFull(t *testing.T) {
	for _, cfg := range []struct {
		name string
		n    int
		seed int64
		opts []PolicyOption
	}{
		{"n300", 300, 7, nil},
		{"n600", 600, 11, nil},
		{"n300-nospf", 300, 7, []PolicyOption{WithTier1ShortestPath(false)}},
		{"n300-tiehigh", 300, 13, []PolicyOption{WithPreferHighNextHop(true)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			pol := deltaTestPolicy(t, cfg.n, cfg.seed, cfg.opts...)
			n := pol.N()
			full := NewSolver(pol)
			ds := NewDeltaSolver(pol)
			rng := rand.New(rand.NewSource(cfg.seed * 1000003))

			// Defense sets: a random deployment and an everyone set.
			some := asn.NewIndexSet(n)
			for i := 0; i < n/4; i++ {
				some.Add(rng.Intn(n))
			}
			all := asn.NewIndexSet(n)
			for i := 0; i < n; i++ {
				all.Add(i)
			}
			defenses := []Defense{
				{},
				{Blocked: some},
				{Blocked: all},
				{ASPA: some},
				{ASPA: all, Peerlock: true},
				{Blocked: some, ASPA: some, Peerlock: true},
			}

			for _, target := range []int{0, n / 2, n - 1} {
				snap, err := BuildSnapshot(pol, target)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 12; trial++ {
					attacker := rng.Intn(n)
					if attacker == target {
						continue
					}
					for _, kind := range Kinds() {
						for di, def := range defenses {
							at := Attack{Target: target, Attacker: attacker, Kind: kind}
							want, err := full.SolveDefense(at, def)
							if err != nil {
								t.Fatal(err)
							}
							got, err := ds.SolveDelta(snap, at, def)
							if err != nil {
								t.Fatal(err)
							}
							label := kind.String()
							requireSameOutcome(t, label+"/def"+string(rune('0'+di)), want, got)
						}
					}
				}
			}
			st := ds.Stats()
			if st.DeltaSolves == 0 {
				t.Fatalf("delta path never ran (stats %+v)", st)
			}
			if st.FullFallbacks > 0 {
				t.Fatalf("unexpected full-solve fallbacks on exact-prefix attacks (stats %+v)", st)
			}
		})
	}
}

// TestDeltaSolveSubPrefixFallsBack pins the sub-prefix path: it must be
// answered by the full solver and still match a direct solve.
func TestDeltaSolveSubPrefixFallsBack(t *testing.T) {
	pol := deltaTestPolicy(t, 300, 3)
	n := pol.N()
	snap, err := BuildSnapshot(pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeltaSolver(pol)
	full := NewSolver(pol)
	at := Attack{Target: 1, Attacker: n - 2, SubPrefix: true}
	want, err := full.SolveDefense(at, Defense{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.SolveDelta(snap, at, Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if got.UsedDelta() {
		t.Fatal("sub-prefix attack must fall back to a full solve")
	}
	requireSameOutcome(t, "subprefix", want, got)
	if ds.Stats().FullFallbacks != 1 {
		t.Fatalf("stats = %+v, want one full fallback", ds.Stats())
	}
}

// TestDeltaSolveChangedSet checks the differential view itself: every
// node not in Changed() must read back exactly the baseline value.
func TestDeltaSolveChangedSet(t *testing.T) {
	pol := deltaTestPolicy(t, 400, 5)
	n := pol.N()
	target := 2
	snap, err := BuildSnapshot(pol, target)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeltaSolver(pol)
	got, err := ds.SolveDelta(snap, Attack{Target: target, Attacker: n - 1}, Defense{})
	if err != nil {
		t.Fatal(err)
	}
	inChanged := make(map[int32]bool, len(got.Changed()))
	last := int32(-1)
	for _, v := range got.Changed() {
		if v <= last {
			t.Fatalf("Changed() not strictly ascending at %d", v)
		}
		last = v
		inChanged[v] = true
	}
	for i := 0; i < n; i++ {
		if inChanged[int32(i)] {
			continue
		}
		if got.HasRoute(i) != snap.HasRoute(i) || got.Class(i) != snap.Class(i) ||
			got.Dist(i) != snap.Dist(i) || got.NextHop(i) != snap.NextHop(i) {
			t.Fatalf("node %d outside Changed() diverged from the baseline", i)
		}
		if got.HasRoute(i) && got.Origin(i) != OriginTarget {
			t.Fatalf("node %d outside Changed() routes to origin %d", i, got.Origin(i))
		}
	}
	// The attacker itself always changes (it originates the hijack).
	if !inChanged[int32(n-1)] {
		t.Fatal("attacker missing from Changed()")
	}
}

// TestDeltaSolveLeakNoRoute pins the no-op leak: an attacker with no
// baseline route has nothing to leak and the outcome is the baseline.
func TestDeltaSolveLeakNoRoute(t *testing.T) {
	// Build a two-component policy by hand: 0—1 (provider 0 of customer
	// 1), and isolated pair 2—3. An attack from the far component leaks
	// nothing.
	b := topology.NewBuilder()
	if err := b.AddLink(asn.ASN(10), asn.ASN(20), topology.RelCustomer); err != nil { // 10 provides for 20
		t.Fatal(err)
	}
	if err := b.AddLink(asn.ASN(30), asn.ASN(40), topology.RelCustomer); err != nil {
		t.Fatal(err)
	}
	gr := b.Build()
	pol, err := NewPolicy(gr, nil)
	if err != nil {
		t.Fatal(err)
	}
	tIx, _ := gr.Index(asn.ASN(10))
	aIx, _ := gr.Index(asn.ASN(30))
	snap, err := BuildSnapshot(pol, tIx)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDeltaSolver(pol)
	got, err := ds.SolveDelta(snap, Attack{Target: tIx, Attacker: aIx, Kind: KindRouteLeak}, Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Changed()) != 0 || got.PollutedCount() != 0 {
		t.Fatalf("no-op leak changed %d nodes, polluted %d", len(got.Changed()), got.PollutedCount())
	}
	if ds.Stats().EmptyDeltas != 1 {
		t.Fatalf("stats = %+v, want one empty delta", ds.Stats())
	}
}

// TestSnapshotMatchesBaselineSolve pins the snapshot arrays against a
// defense-free target-only solve.
func TestSnapshotMatchesBaselineSolve(t *testing.T) {
	pol := deltaTestPolicy(t, 300, 17)
	n := pol.N()
	s := NewSolver(pol)
	for _, target := range []int{0, n / 3, n - 1} {
		snap, err := BuildSnapshot(pol, target)
		if err != nil {
			t.Fatal(err)
		}
		o := s.solveScenario(Attack{Target: target, Attacker: target}, &scenario{})
		for i := 0; i < n; i++ {
			if o.HasRoute(i) != snap.HasRoute(i) || o.Class(i) != snap.Class(i) ||
				o.Dist(i) != snap.Dist(i) || o.NextHop(i) != snap.NextHop(i) {
				t.Fatalf("target %d node %d: snapshot diverged from baseline solve", target, i)
			}
		}
	}
}
