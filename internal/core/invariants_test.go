package core

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// TestOutcomeInvariants property-checks structural invariants of converged
// outcomes across random topologies, attacks and filter sets:
//
//  1. next-hop consistency: a routed node's next hop is routed, one hop
//     closer, and leads to the same origin;
//  2. dist equals the reconstructed path length;
//  3. the path's first edge class matches the selected route class;
//  4. origins: target routes to itself, attacker to itself;
//  5. filtered nodes never select attacker routes;
//  6. export soundness: the next hop's selected route must be exportable
//     to this node under valley-free rules.
func TestOutcomeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		p := topology.DefaultParams(400)
		p.Seed = int64(trial + 10)
		g := topology.MustGenerate(p)
		con, err := topology.ContractSiblings(g)
		if err != nil {
			t.Fatal(err)
		}
		cg := con.Graph
		c := topology.Classify(cg, topology.ClassifyOptions{})
		pol, err := NewPolicy(cg, c.Tier1)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(pol)
		for rep := 0; rep < 20; rep++ {
			target, attacker := rng.Intn(cg.N()), rng.Intn(cg.N())
			if target == attacker {
				continue
			}
			var blocked *asn.IndexSet
			if rep%2 == 0 {
				blocked = asn.NewIndexSet(cg.N())
				for k := 0; k < 30; k++ {
					blocked.Add(rng.Intn(cg.N()))
				}
			}
			at := Attack{Target: target, Attacker: attacker, SubPrefix: rep%5 == 0}
			o, err := s.Solve(at, blocked)
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, pol, cg, o, at, Defense{Blocked: blocked})
		}
	}
}

// TestOutcomeInvariantsScenarios re-runs the invariant battery over every
// attack kind × defense-mechanism combination: the structural properties
// must hold whatever the scenario, with the kind-aware adjustments (the
// attacker's origination starts at the scenario seed depth; each
// mechanism only filters where the kind makes it applicable).
func TestOutcomeInvariantsScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mechs := []DefenseMech{0, MechROV, MechASPA, MechPeerlock, MechROV | MechASPA, MechROV | MechASPA | MechPeerlock}
	for trial := 0; trial < 3; trial++ {
		p := topology.DefaultParams(400)
		p.Seed = int64(trial + 30)
		g := topology.MustGenerate(p)
		con, err := topology.ContractSiblings(g)
		if err != nil {
			t.Fatal(err)
		}
		cg := con.Graph
		c := topology.Classify(cg, topology.ClassifyOptions{})
		pol, err := NewPolicy(cg, c.Tier1)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(pol)
		for _, kind := range Kinds() {
			for _, mech := range mechs {
				for rep := 0; rep < 4; rep++ {
					target, attacker := rng.Intn(cg.N()), rng.Intn(cg.N())
					if target == attacker {
						continue
					}
					set := asn.NewIndexSet(cg.N())
					for k := 0; k < 30; k++ {
						set.Add(rng.Intn(cg.N()))
					}
					def := mech.Deploy(set)
					at := Attack{Target: target, Attacker: attacker, Kind: kind,
						SubPrefix: kind != KindRouteLeak && rep%2 == 0}
					o, err := s.SolveDefense(at, def)
					if err != nil {
						t.Fatal(err)
					}
					checkInvariants(t, pol, cg, o, at, def)
				}
			}
		}
	}
}

func checkInvariants(t *testing.T, pol *Policy, g *topology.Graph, o *Outcome, at Attack, def Defense) {
	t.Helper()
	sc, err := buildScenario(pol, at, def, func() (int16, bool) {
		return NewSolver(pol).baselineDist(at)
	})
	if err != nil {
		t.Fatal(err)
	}
	// (4) origin self-routing, at the scenario's seed depths.
	if !at.SubPrefix {
		if o.Origin(at.Target) != OriginTarget || o.Class(at.Target) != ClassOrigin {
			t.Fatal("target does not originate its own route")
		}
	}
	if sc.seedAttacker {
		if o.Origin(at.Attacker) != OriginAttacker || o.Class(at.Attacker) != ClassOrigin {
			t.Fatal("attacker does not originate its own route")
		}
		if o.Dist(at.Attacker) != sc.seedDist {
			t.Fatalf("attacker originates at dist %d, want scenario seed %d", o.Dist(at.Attacker), sc.seedDist)
		}
	} else if o.Origin(at.Attacker) == OriginAttacker {
		t.Fatal("non-announcing attacker (no-op leak) still has an attacker route")
	}
	for i := 0; i < o.N(); i++ {
		if !o.HasRoute(i) {
			continue
		}
		// (5) the scenario's resolved filters hold — except at the attacker
		// itself, which always keeps its own announcement.
		if i != at.Attacker && o.Origin(i) == OriginAttacker && sc.rejects(pol, int32(i), OriginAttacker) {
			t.Fatalf("filtered node %d selected the attacker route (kind %v)", i, at.Kind)
		}
		if o.Class(i) == ClassOrigin {
			wantDist := int16(0)
			if i == at.Attacker {
				wantDist = sc.seedDist
			}
			if o.Dist(i) != wantDist {
				t.Fatalf("origin node %d has dist %d, want %d", i, o.Dist(i), wantDist)
			}
			continue
		}
		nh := int(o.NextHop(i))
		// (1) next-hop consistency.
		if !o.HasRoute(nh) {
			t.Fatalf("node %d forwards to unrouted %d", i, nh)
		}
		if o.Dist(nh) != o.Dist(i)-1 {
			t.Fatalf("node %d dist %d but next hop %d dist %d", i, o.Dist(i), nh, o.Dist(nh))
		}
		if o.Origin(nh) != o.Origin(i) {
			t.Fatalf("node %d origin %d but next hop %d origin %d", i, o.Origin(i), nh, o.Origin(nh))
		}
		// (3) class matches the relationship to the next hop.
		rel := g.Rel(i, nh)
		wantClass := ClassNone
		switch rel {
		case topology.RelCustomer:
			wantClass = ClassCustomer
		case topology.RelPeer:
			wantClass = ClassPeer
		case topology.RelProvider:
			wantClass = ClassProvider
		default:
			t.Fatalf("node %d forwards to non-neighbor %d", i, nh)
		}
		if o.Class(i) != wantClass {
			t.Fatalf("node %d class %v but next-hop relationship %v", i, o.Class(i), rel)
		}
		// (6) export soundness: nh's route class must be exportable to i.
		// rel is nh's role from i's perspective; nh exports to i whose
		// role from nh's perspective is the inverse.
		var relFromNH topology.Rel
		switch rel {
		case topology.RelCustomer:
			relFromNH = topology.RelProvider
		case topology.RelProvider:
			relFromNH = topology.RelCustomer
		default:
			relFromNH = rel
		}
		if !exportsTo(o.Class(nh), relFromNH) {
			t.Fatalf("node %d learned a route its next hop %d (class %v) may not export to a %v",
				i, nh, o.Class(nh), relFromNH)
		}
		// (2) dist equals path length plus the origination's seed depth
		// (forged-origin prepends and leaked routes advertise a path that
		// starts longer than the hop count back to the announcing node).
		path := o.Path(i)
		want := len(path) - 1
		if o.Origin(i) == OriginAttacker {
			want += int(sc.seedDist)
		}
		if path == nil || want != int(o.Dist(i)) {
			t.Fatalf("node %d dist %d but path %v (seed %d)", i, o.Dist(i), path, sc.seedDist)
		}
	}
}
