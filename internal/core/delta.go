// Delta solve: answer one attack query against a cached baseline
// Snapshot by repairing only the region of the converged state the
// attacker's announcement can reach, instead of re-running the full
// three-stage solve from scratch.
//
// The key observation is that each solver stage computes the unique
// fixpoint of a closed-form per-node equation over fixed seeds:
//
//	stage 1:  d(v) = 1 + min{d(c) : c customer of v, routed, not rejected}
//	stage 2:  tier-1 SPF over stage-1 values, then a one-shot peer fill
//	stage 3:  d(v) = 1 + min{d(p) : p provider of v, routed, not rejected}
//
// with ties broken by the policy's deterministic lowest-next-hop order
// and the winner's origin carried along. Unit edge weights make
// self-sustaining cycles impossible (a route's distance would have to
// increase around the cycle), so any fixpoint reached by local repair
// equals the from-scratch stage result. The delta solver therefore seeds
// the attacker's announcement as the only difference against the
// baseline, and runs a change-notification worklist per stage: recompute
// a node's equation from its neighbors' current values, settle, and
// notify dependents only when the value changed. Untouched nodes read
// their values straight from the Snapshot.
//
// Correctness hinges on the baseline being defense-independent: every
// Defense mechanism filters only attacker-origin routes
// (scenario.rejects is false for any other origin), so the cached
// no-attack baseline is the correct starting state under any Defense.
package core

import (
	"fmt"
	"slices"
)

// deltaDistCap bounds route distances considered by the repair worklist;
// anything longer is treated as unreachable. Converged distances are
// bounded by the topology diameter, far below this; the cap exists so a
// transiently self-feeding cycle in an adversarial graph decays to
// unrouted instead of climbing forever.
const deltaDistCap = 1 << 13

// rv is one node's route value during delta repair; class ClassNone
// means no route (the other fields are then meaningless).
type rv struct {
	class RouteClass
	dist  int16
	nh    int32
	org   int8
}

func (a rv) eq(b rv) bool {
	if a.class != b.class {
		return false
	}
	if a.class == ClassNone {
		return true
	}
	return a.dist == b.dist && a.nh == b.nh && a.org == b.org
}

var rvNone = rv{class: ClassNone, nh: -1, org: OriginNone}

// DeltaStats counts what the delta path did, for observability and for
// tests asserting the fast path actually ran.
type DeltaStats struct {
	// DeltaSolves counts queries answered by delta repair.
	DeltaSolves int64
	// EmptyDeltas counts queries whose attack is a no-op (a route leak
	// with nothing to leak): the outcome is the baseline itself.
	EmptyDeltas int64
	// FullFallbacks counts queries answered by a full solve (sub-prefix
	// hijacks, which converge on a different routing plane, and repairs
	// that blew the examination budget).
	FullFallbacks int64
	// Examined is the cumulative number of worklist node examinations.
	Examined int64
}

// DeltaSolver answers attack queries against baseline Snapshots of one
// Policy. Like Solver, it is single-goroutine: the DeltaOutcome returned
// by SolveDelta is only valid until the next call on the same solver.
type DeltaSolver struct {
	pol  *Policy
	full *Solver // fallback path; also serves sub-prefix queries

	t1Slot  []int32 // node → index into the snapshot's tier-1 store, -1 otherwise
	t1Touch []bool  // node is a tier-1 or peers with one

	snap *Snapshot // snapshot bound for the current query
	sc   *scenario // resolved scenario for the current query

	qe      int32 // query epoch for overlay stamps
	tStamp  []int32
	tStage  []int8
	oClass  []RouteClass
	oDist   []int16
	oNH     []int32
	oOrg    []int8
	touched []int32
	s3fixed []bool

	d1, d2           []int32 // per-stage dirty lists (overlay differs from baseline)
	d1Stamp, d2Stamp []int32

	we      int32 // worklist epoch (bumped per stage run) for enqueue dedup
	qStamp  []int32
	qDist   []int16
	buckets [][]int32

	fStamp []int32 // stage-2 fill-candidate dedup
	fill   []int32

	// tier-1 scratch for the stage-2 SPF pass, indexed by t1 slot.
	t1Work []rv
	t1Sel  []t1sel

	changed  []int32
	polluted int
	exam     int64

	stats DeltaStats
}

// NewDeltaSolver returns a delta solver over the policy. The one-time
// setup scans the peer adjacency to precompute which nodes can influence
// the tier-1 SPF pass.
func NewDeltaSolver(pol *Policy) *DeltaSolver {
	n := pol.N()
	ds := &DeltaSolver{
		pol:     pol,
		full:    NewSolver(pol),
		t1Slot:  make([]int32, n),
		t1Touch: make([]bool, n),
		tStamp:  make([]int32, n),
		tStage:  make([]int8, n),
		oClass:  make([]RouteClass, n),
		oDist:   make([]int16, n),
		oNH:     make([]int32, n),
		oOrg:    make([]int8, n),
		s3fixed: make([]bool, n),
		d1Stamp: make([]int32, n),
		d2Stamp: make([]int32, n),
		qStamp:  make([]int32, n),
		qDist:   make([]int16, n),
		fStamp:  make([]int32, n),
	}
	slot := int32(0)
	for i := 0; i < n; i++ {
		ds.t1Slot[i] = -1
		if pol.tier1SPF && pol.tier1[i] {
			ds.t1Slot[i] = slot
			slot++
			ds.t1Touch[i] = true
			for _, p := range pol.Peers(i) {
				ds.t1Touch[p] = true
			}
		}
	}
	ds.t1Work = make([]rv, slot)
	ds.t1Sel = make([]t1sel, 0, slot)
	return ds
}

// Stats returns cumulative counters for this solver.
func (ds *DeltaSolver) Stats() DeltaStats { return ds.stats }

// DeltaOutcome is the converged outcome of one attack query, represented
// as the baseline Snapshot plus the set of nodes whose route changed.
// It satisfies the same read contract as Outcome and is valid until the
// next SolveDelta on the owning solver.
type DeltaOutcome struct {
	Target   int
	Attacker int

	snap *Snapshot
	ds   *DeltaSolver
	qe   int32
	full *Outcome // non-nil when the query fell back to a full solve

	changed  []int32
	sorted   bool
	polluted int
}

// UsedDelta reports whether the query was answered by delta repair
// (false: full-solve fallback).
func (o *DeltaOutcome) UsedDelta() bool { return o.full == nil }

// N returns the node count.
func (o *DeltaOutcome) N() int {
	if o.full != nil {
		return o.full.N()
	}
	return o.snap.N()
}

// Changed returns the nodes whose converged route differs from the
// baseline, ascending. Nil for full-solve fallbacks (the whole state was
// recomputed; no differential is tracked). The sort happens lazily on
// first call: queries that only need counts never pay for it.
func (o *DeltaOutcome) Changed() []int32 {
	if o.full != nil {
		return nil
	}
	if !o.sorted {
		slices.Sort(o.changed)
		o.sorted = true
	}
	return o.changed
}

func (o *DeltaOutcome) read(i int) rv {
	if o.ds.tStamp[i] == o.qe && o.ds.tStage[i] == 3 {
		return rv{o.ds.oClass[i], o.ds.oDist[i], o.ds.oNH[i], o.ds.oOrg[i]}
	}
	if o.snap.class[i] == ClassNone {
		return rvNone
	}
	return rv{o.snap.class[i], o.snap.dist[i], o.snap.nexthop[i], OriginTarget}
}

// HasRoute reports whether node i selected any route.
func (o *DeltaOutcome) HasRoute(i int) bool {
	if o.full != nil {
		return o.full.HasRoute(i)
	}
	return o.read(i).class != ClassNone
}

// Origin returns which origin node i routes to.
func (o *DeltaOutcome) Origin(i int) int8 {
	if o.full != nil {
		return o.full.Origin(i)
	}
	v := o.read(i)
	if v.class == ClassNone {
		return OriginNone
	}
	return v.org
}

// Class returns the route class node i selected.
func (o *DeltaOutcome) Class(i int) RouteClass {
	if o.full != nil {
		return o.full.Class(i)
	}
	return o.read(i).class
}

// Dist returns node i's AS-path length, or -1 without a route.
func (o *DeltaOutcome) Dist(i int) int16 {
	if o.full != nil {
		return o.full.Dist(i)
	}
	v := o.read(i)
	if v.class == ClassNone {
		return -1
	}
	return v.dist
}

// NextHop returns the neighbor node i forwards through, or -1 at an
// origin or unrouted node.
func (o *DeltaOutcome) NextHop(i int) int32 {
	if o.full != nil {
		return o.full.NextHop(i)
	}
	v := o.read(i)
	if v.class == ClassNone || v.class == ClassOrigin {
		return -1
	}
	return v.nh
}

// Polluted reports whether node i selected a route to the attacker.
func (o *DeltaOutcome) Polluted(i int) bool {
	if o.full != nil {
		return o.full.Polluted(i)
	}
	return i != o.Attacker && o.Origin(i) == OriginAttacker
}

// PollutedCount returns the number of polluted ASes. On the delta path
// this is O(1): the baseline contributes no attacker-origin routes, so
// pollution lives entirely in the changed set.
func (o *DeltaOutcome) PollutedCount() int {
	if o.full != nil {
		return o.full.PollutedCount()
	}
	return o.polluted
}

// PollutedNodes appends all polluted node indices to dst, ascending.
func (o *DeltaOutcome) PollutedNodes(dst []int) []int {
	if o.full != nil {
		return o.full.PollutedNodes(dst)
	}
	for _, i := range o.Changed() {
		if o.Polluted(int(i)) {
			dst = append(dst, int(i))
		}
	}
	return dst
}

// SolveDelta computes the converged outcome of the attack under the
// defense, against the snapshot's baseline. The snapshot must have been
// built for at.Target over the same Policy. Sub-prefix attacks converge
// on a separate routing plane that does not decompose against the
// baseline, so they (and repairs that exceed the examination budget)
// fall back to a full solve — still correct, just not incremental.
func (ds *DeltaSolver) SolveDelta(snap *Snapshot, at Attack, def Defense) (*DeltaOutcome, error) {
	if err := validateAttack(ds.pol, at); err != nil {
		return nil, fmt.Errorf("delta solve: %w", err)
	}
	if snap == nil || snap.pol != ds.pol {
		return nil, fmt.Errorf("delta solve: snapshot policy mismatch")
	}
	if snap.target != at.Target {
		return nil, fmt.Errorf("delta solve: snapshot is for target %d, attack targets %d", snap.target, at.Target)
	}
	if at.SubPrefix {
		return ds.fallback(at, def)
	}
	sc, err := buildScenario(ds.pol, at, def, func() (int16, bool) {
		// The snapshot is exactly the defense-free no-attack state a
		// route leak's baseline solve would compute.
		if snap.class[at.Attacker] == ClassNone {
			return 0, false
		}
		return snap.dist[at.Attacker], true
	})
	if err != nil {
		return nil, err
	}

	ds.snap = snap
	ds.sc = &sc
	ds.qe++
	ds.touched = ds.touched[:0]
	ds.d1 = ds.d1[:0]
	ds.d2 = ds.d2[:0]
	ds.changed = ds.changed[:0]
	ds.polluted = 0
	ds.exam = 0

	out := &DeltaOutcome{Target: at.Target, Attacker: at.Attacker, snap: snap, ds: ds, qe: ds.qe}
	if !sc.seedAttacker {
		// A leak with no route to leak: the converged state is the
		// baseline itself.
		ds.stats.EmptyDeltas++
		return out, nil
	}

	budget := int64(8*ds.pol.N() + 64)
	ok := ds.stage1Delta(at, budget)
	if ok {
		ds.stage2Delta(at)
		ok = ds.stage3Delta(at, budget)
	}
	if !ok {
		ds.stats.Examined += ds.exam
		return ds.fallback(at, def)
	}
	ds.collectChanged(at)
	ds.stats.Examined += ds.exam
	ds.stats.DeltaSolves++
	out.changed = ds.changed
	out.polluted = ds.polluted
	return out, nil
}

func (ds *DeltaSolver) fallback(at Attack, def Defense) (*DeltaOutcome, error) {
	o, err := ds.full.SolveDefense(at, def)
	if err != nil {
		return nil, err
	}
	ds.stats.FullFallbacks++
	return &DeltaOutcome{Target: at.Target, Attacker: at.Attacker, full: o}, nil
}

// ---- baseline readers -------------------------------------------------

// base1 is node v's baseline value after stage 1.
func (ds *DeltaSolver) base1(v int32) rv {
	if s := ds.t1Slot[v]; s >= 0 {
		sn := ds.snap
		if sn.t1Class[s] == ClassNone {
			return rvNone
		}
		return rv{sn.t1Class[s], sn.t1Dist[s], sn.t1NH[s], OriginTarget}
	}
	sn := ds.snap
	if sn.class[v] == ClassOrigin || sn.class[v] == ClassCustomer {
		return rv{sn.class[v], sn.dist[v], sn.nexthop[v], OriginTarget}
	}
	return rvNone
}

// base2 is node v's baseline value after stage 2: the final value unless
// the node was only reached by the stage-3 provider flood.
func (ds *DeltaSolver) base2(v int32) rv {
	sn := ds.snap
	if sn.class[v] == ClassNone || sn.class[v] == ClassProvider {
		return rvNone
	}
	return rv{sn.class[v], sn.dist[v], sn.nexthop[v], OriginTarget}
}

// base3 is node v's final baseline value.
func (ds *DeltaSolver) base3(v int32) rv {
	sn := ds.snap
	if sn.class[v] == ClassNone {
		return rvNone
	}
	return rv{sn.class[v], sn.dist[v], sn.nexthop[v], OriginTarget}
}

func (ds *DeltaSolver) overlay(v int32) rv {
	return rv{ds.oClass[v], ds.oDist[v], ds.oNH[v], ds.oOrg[v]}
}

// read1 is node v's current value during stage-1 repair.
func (ds *DeltaSolver) read1(v int32) rv {
	if ds.tStamp[v] == ds.qe {
		return ds.overlay(v)
	}
	return ds.base1(v)
}

// read3 is node v's current value during stage-3 repair. Overlays from
// earlier stages that ended clean are ignored: the node evolves with the
// baseline.
func (ds *DeltaSolver) read3(v int32) rv {
	if ds.tStamp[v] == ds.qe && ds.tStage[v] == 3 {
		return ds.overlay(v)
	}
	return ds.base3(v)
}

func (ds *DeltaSolver) setOverlay(v int32, stage int8, val rv) {
	if ds.tStamp[v] != ds.qe {
		ds.tStamp[v] = ds.qe
		ds.touched = append(ds.touched, v)
	}
	ds.tStage[v] = stage
	ds.oClass[v] = val.class
	ds.oDist[v] = val.dist
	ds.oNH[v] = val.nh
	ds.oOrg[v] = val.org
}

// ---- worklist ----------------------------------------------------------

func (ds *DeltaSolver) resetWorklist() {
	ds.we++
	// Buckets are fully drained by each stage's loop, so only capacity
	// management remains.
	if ds.buckets == nil {
		ds.buckets = make([][]int32, 0, 64)
	}
}

func (ds *DeltaSolver) enqueue(v int32, d int) {
	if d < 0 {
		d = 0
	}
	if d > deltaDistCap {
		d = deltaDistCap
	}
	if ds.qStamp[v] == ds.we && int(ds.qDist[v]) == d {
		return
	}
	ds.qStamp[v] = ds.we
	ds.qDist[v] = int16(d)
	for len(ds.buckets) <= d {
		ds.buckets = append(ds.buckets, nil)
	}
	ds.buckets[d] = append(ds.buckets[d], v)
}

// popped clears v's enqueue-dedup mark after it leaves bucket d, so a
// later change notification can re-queue it.
func (ds *DeltaSolver) popped(v int32, d int) {
	if ds.qStamp[v] == ds.we && int(ds.qDist[v]) == d {
		ds.qStamp[v] = 0
	}
}

// notifyBucket is the bucket at which dependents of a changed node are
// re-examined: one past the smaller of the old and new distances.
func notifyBucket(old, val rv) int {
	d := -1
	if old.class != ClassNone {
		d = int(old.dist)
	}
	if val.class != ClassNone && (d < 0 || int(val.dist) < d) {
		d = int(val.dist)
	}
	return d + 1
}

// ---- stage 1: customer-route repair ------------------------------------

// stage1Delta repairs the customer-learned flood: the attacker's seed is
// the only change against the baseline, so repair starts at its
// providers and follows change notifications. Returns false when the
// examination budget is exhausted (caller falls back to a full solve).
func (ds *DeltaSolver) stage1Delta(at Attack, budget int64) bool {
	pol := ds.pol
	sc := ds.sc
	ds.resetWorklist()

	seedVal := rv{ClassOrigin, sc.seedDist, -1, OriginAttacker}
	a := int32(at.Attacker)
	old := ds.base1(a)
	ds.setOverlay(a, 1, seedVal)
	ds.mark1(a)
	for _, p := range pol.Providers(at.Attacker) {
		ds.enqueue(p, notifyBucket(old, seedVal))
	}

	lo := 0
	for lo < len(ds.buckets) {
		b := ds.buckets[lo]
		if len(b) == 0 {
			lo++
			continue
		}
		v := b[len(b)-1]
		ds.buckets[lo] = b[:len(b)-1]
		ds.popped(v, lo)
		if int(v) == at.Target || int(v) == at.Attacker {
			continue // seeds are fixed
		}
		ds.exam++
		if ds.exam > budget {
			return false
		}

		best := rvNone
		for _, c := range pol.Customers(int(v)) {
			cv := ds.read1(c)
			if cv.class == ClassNone || sc.rejects(pol, v, cv.org) {
				continue
			}
			cd := cv.dist + 1
			if best.class == ClassNone || cd < best.dist || cd == best.dist && pol.betterNH(c, best.nh) {
				best = rv{ClassCustomer, cd, c, cv.org}
			}
		}
		if best.class != ClassNone && int(best.dist) >= deltaDistCap {
			best = rvNone
		}
		if best.class != ClassNone && int(best.dist) > lo {
			// Not yet reachable at this level; re-examine at its distance
			// with fresher neighbor state.
			ds.enqueue(v, int(best.dist))
			continue
		}
		cur := ds.read1(v)
		if best.eq(cur) {
			continue
		}
		ds.setOverlay(v, 1, best)
		ds.mark1(v)
		nb := notifyBucket(cur, best)
		for _, p := range pol.Providers(int(v)) {
			ds.enqueue(p, nb)
		}
		if nb <= lo {
			lo = nb
		}
	}
	return true
}

// mark1 updates v's membership in the stage-1 dirty list to match
// whether its overlay differs from the stage-1 baseline.
func (ds *DeltaSolver) mark1(v int32) {
	dirty := !ds.overlay(v).eq(ds.base1(v))
	listed := ds.d1Stamp[v] == ds.qe
	if dirty && !listed {
		ds.d1Stamp[v] = ds.qe
		ds.d1 = append(ds.d1, v)
	} else if !dirty && listed {
		ds.d1Stamp[v] = 0 // lazily skipped when the list is walked
	}
}

func (ds *DeltaSolver) mark2(v int32) {
	if !ds.overlay(v).eq(ds.base2(v)) && ds.d2Stamp[v] != ds.qe {
		ds.d2Stamp[v] = ds.qe
		ds.d2 = append(ds.d2, v)
	}
}

// ---- stage 2: tier-1 SPF + peer-fill repair ----------------------------

// stage2Delta recomputes the tier-1 shortest-path pass (only when a
// stage-1 change can influence it) and repairs the one-shot peer fill
// for nodes adjacent to changes. Returns the number of stage-2 dirty
// nodes recorded (informational; the d2 list itself drives stage 3).
func (ds *DeltaSolver) stage2Delta(at Attack) int {
	pol := ds.pol
	sc := ds.sc

	runT1 := false
	if pol.tier1SPF {
		for _, v := range ds.d1 {
			if ds.d1Stamp[v] == ds.qe && ds.t1Touch[v] {
				runT1 = true
				break
			}
		}
	}

	if runT1 {
		// Mirror stagePeer's tier-1 pass exactly, over current stage-1
		// values, in a scratch working set. The pass is tiny (the tier-1
		// club), so it runs whole once any input to it changed.
		sn := ds.snap
		ds.t1Sel = ds.t1Sel[:0]
		for s, node := range sn.t1Nodes {
			w := ds.read1(node)
			ds.t1Work[s] = w
			d := int16(1) << 14
			if w.class != ClassNone {
				d = w.dist
			}
			ds.t1Sel = append(ds.t1Sel, t1sel{node, d})
		}
		sel := ds.t1Sel
		for i := 1; i < len(sel); i++ {
			for j := i; j > 0 && (sel[j].d < sel[j-1].d ||
				sel[j].d == sel[j-1].d && sel[j].node < sel[j-1].node); j-- {
				sel[j], sel[j-1] = sel[j-1], sel[j]
			}
		}
		for _, t := range sel {
			w := t.node
			slot := ds.t1Slot[w]
			best := rvNone
			for _, v := range pol.Peers(int(w)) {
				var dv rv
				if s := ds.t1Slot[v]; s >= 0 {
					dv = ds.t1Work[s]
				} else {
					dv = ds.read1(v)
				}
				if dv.class != ClassOrigin && dv.class != ClassCustomer {
					continue
				}
				if sc.rejects(pol, w, dv.org) {
					continue
				}
				cd := dv.dist + 1
				if best.class == ClassNone || cd < best.dist || cd == best.dist && pol.betterNH(v, best.nh) {
					best = rv{ClassPeer, cd, v, dv.org}
				}
			}
			if best.class == ClassNone {
				continue
			}
			cur := ds.t1Work[slot]
			if cur.class == ClassNone ||
				pol.better(int(w), ClassPeer, best.dist, best.nh, cur.class, cur.dist, cur.nh) {
				ds.t1Work[slot] = best
			}
		}
		// Commit every tier-1's post-pass value so later stages read a
		// consistent stage-2 state for the whole club.
		for s, node := range sn.t1Nodes {
			ds.setOverlay(node, 2, ds.t1Work[s])
			ds.mark2(node)
		}
	}

	// Peer-fill repair: recompute the fill for unassigned nodes whose
	// donor neighborhood changed, and carry every stage-1 change forward
	// into the stage-2 state.
	ds.fill = ds.fill[:0]
	for _, v := range ds.d1 {
		if ds.d1Stamp[v] != ds.qe {
			continue
		}
		if ds.t1Slot[v] >= 0 {
			continue // committed by the tier-1 pass above
		}
		if ds.overlay(v).class != ClassNone {
			ds.setOverlay(v, 2, ds.overlay(v))
			ds.mark2(v)
		} else {
			ds.addFill(v)
		}
		for _, w := range pol.Peers(int(v)) {
			ds.addFill(w)
		}
	}
	if runT1 {
		for _, node := range ds.snap.t1Nodes {
			if ds.d2Stamp[node] == ds.qe {
				for _, w := range pol.Peers(int(node)) {
					ds.addFill(w)
				}
			}
		}
	}
	for _, w := range ds.fill {
		best := rvNone
		for _, v := range pol.Peers(int(w)) {
			dv := ds.fillDonor(v)
			if dv.class != ClassOrigin && dv.class != ClassCustomer {
				continue
			}
			if sc.rejects(pol, w, dv.org) {
				continue
			}
			cd := dv.dist + 1
			if best.class == ClassNone || cd < best.dist || cd == best.dist && pol.betterNH(v, best.nh) {
				best = rv{ClassPeer, cd, v, dv.org}
			}
		}
		if ds.tStamp[w] == ds.qe || !best.eq(ds.base2(w)) {
			ds.setOverlay(w, 2, best)
			ds.mark2(w)
		}
	}
	return len(ds.d2)
}

// addFill queues w for peer-fill recomputation if it is fill-eligible:
// not handled by the tier-1 pass and unassigned after stage 1.
func (ds *DeltaSolver) addFill(w int32) {
	if ds.fStamp[w] == ds.qe {
		return
	}
	if ds.pol.tier1SPF && ds.pol.tier1[w] {
		return
	}
	if ds.read1(w).class != ClassNone {
		return
	}
	ds.fStamp[w] = ds.qe
	ds.fill = append(ds.fill, w)
}

// fillDonor is peer v's value as seen by the fill pass: the post-tier-1
// stage-2 state. Stage-1 overlays count only if the node actually
// changed; clean nodes evolve with the baseline.
func (ds *DeltaSolver) fillDonor(v int32) rv {
	if ds.tStamp[v] == ds.qe {
		if ds.tStage[v] == 2 || ds.tStage[v] == 1 && ds.d1Stamp[v] == ds.qe {
			return ds.overlay(v)
		}
	}
	return ds.base2(v)
}

// ---- stage 3: provider-flood repair ------------------------------------

// stage3Delta repairs the downward provider flood with the same
// change-notification worklist as stage 1, seeded from the stage-2 dirty
// set. Returns false when the examination budget is exhausted.
func (ds *DeltaSolver) stage3Delta(at Attack, budget int64) bool {
	pol := ds.pol
	sc := ds.sc
	ds.resetWorklist()

	// Carry stage-2 changes into the stage-3 state and seed the
	// worklist: assigned nodes are fixed, unassigned ones become
	// provider-fillable, and customers of anything that changed must
	// re-examine their provider candidates.
	for _, v := range ds.d2 {
		if ds.d2Stamp[v] != ds.qe {
			continue
		}
		val := ds.overlay(v)
		old := ds.base3(v)
		ds.setOverlay(v, 3, val)
		ds.s3fixed[v] = val.class != ClassNone
		if val.class == ClassNone {
			ds.enqueue(v, 0)
		}
		if !val.eq(old) {
			nb := notifyBucket(old, val)
			for _, c := range pol.Customers(int(v)) {
				ds.enqueue(c, nb)
			}
		}
	}

	lo := 0
	for lo < len(ds.buckets) {
		b := ds.buckets[lo]
		if len(b) == 0 {
			lo++
			continue
		}
		v := b[len(b)-1]
		ds.buckets[lo] = b[:len(b)-1]
		ds.popped(v, lo)
		if ds.fixed3(v) {
			continue
		}
		ds.exam++
		if ds.exam > budget {
			return false
		}

		best := rvNone
		for _, p := range pol.Providers(int(v)) {
			dv := ds.read3(p)
			if dv.class == ClassNone || sc.rejects(pol, v, dv.org) {
				continue
			}
			cd := dv.dist + 1
			if best.class == ClassNone || cd < best.dist || cd == best.dist && pol.betterNH(p, best.nh) {
				best = rv{ClassProvider, cd, p, dv.org}
			}
		}
		if best.class != ClassNone && int(best.dist) >= deltaDistCap {
			best = rvNone
		}
		if best.class != ClassNone && int(best.dist) > lo {
			ds.enqueue(v, int(best.dist))
			continue
		}
		cur := ds.read3(v)
		if best.eq(cur) {
			continue
		}
		ds.setOverlay(v, 3, best)
		ds.s3fixed[v] = false
		nb := notifyBucket(cur, best)
		for _, c := range pol.Customers(int(v)) {
			ds.enqueue(c, nb)
		}
		if nb <= lo {
			lo = nb
		}
	}
	return true
}

// fixed3 reports whether v's value is settled for stage 3: it was
// assigned by stage 1 or 2 (in the overlay or in the baseline), so the
// provider flood cannot change it.
func (ds *DeltaSolver) fixed3(v int32) bool {
	if ds.tStamp[v] == ds.qe && ds.tStage[v] == 3 {
		return ds.s3fixed[v]
	}
	c := ds.snap.class[v]
	return c == ClassOrigin || c == ClassCustomer || c == ClassPeer
}

// collectChanged gathers the final differential: every touched node
// whose stage-3 value differs from the final baseline, ascending.
func (ds *DeltaSolver) collectChanged(at Attack) {
	for _, v := range ds.touched {
		if ds.tStage[v] != 3 {
			continue
		}
		if ds.overlay(v).eq(ds.base3(v)) {
			continue
		}
		ds.changed = append(ds.changed, v)
		if ds.oClass[v] != ClassNone && ds.oOrg[v] == OriginAttacker && int(v) != at.Attacker {
			ds.polluted++
		}
	}
}
