package core

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func mustRun(t *testing.T, e *Engine, at Attack, blocked *asn.IndexSet, trace bool) (*Outcome, *Trace) {
	t.Helper()
	o, tr, err := e.Run(at, blocked, trace)
	if err != nil {
		t.Fatal(err)
	}
	return o, tr
}

func outcomesEqual(a, b *Outcome) (string, bool) {
	if a.N() != b.N() {
		return "node count differs", false
	}
	for i := 0; i < a.N(); i++ {
		if a.HasRoute(i) != b.HasRoute(i) {
			return "HasRoute differs", false
		}
		if !a.HasRoute(i) {
			continue
		}
		if a.Origin(i) != b.Origin(i) || a.Class(i) != b.Class(i) ||
			a.Dist(i) != b.Dist(i) || a.NextHop(i) != b.NextHop(i) {
			return "route differs", false
		}
	}
	return "", true
}

func TestEngineValidation(t *testing.T) {
	pol, _ := buildPolicy(t, diamond)
	e := NewEngine(pol)
	if _, _, err := e.Run(Attack{Target: 1, Attacker: 1}, nil, false); err == nil {
		t.Error("target==attacker accepted")
	}
	if _, _, err := e.Run(Attack{Target: -1, Attacker: 1}, nil, false); err == nil {
		t.Error("bad index accepted")
	}
}

func TestEngineMatchesSolverDiamond(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	e := NewEngine(pol)
	for target := 0; target < g.N(); target++ {
		for attacker := 0; attacker < g.N(); attacker++ {
			if target == attacker {
				continue
			}
			at := Attack{Target: target, Attacker: attacker}
			so := mustSolve(t, s, at, nil)
			eo, _ := mustRun(t, e, at, nil, false)
			if msg, ok := outcomesEqual(so, eo); !ok {
				t.Fatalf("attack %d→%d: %s", attacker, target, msg)
			}
		}
	}
}

// TestEngineMatchesSolverRandom is the central equivalence property: on
// random synthetic topologies, random attack pairs, random filter sets,
// and both attack types, the O(V+E) solver and the message-passing engine
// converge to the identical routing state.
func TestEngineMatchesSolverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		p := topology.DefaultParams(300)
		p.Seed = int64(trial + 1)
		g := topology.MustGenerate(p)
		con, err := topology.ContractSiblings(g)
		if err != nil {
			t.Fatal(err)
		}
		cg := con.Graph
		c := topology.Classify(cg, topology.ClassifyOptions{})
		for variant, opts := range [][]PolicyOption{
			{WithTier1ShortestPath(true)},
			{WithTier1ShortestPath(false)},
			{WithTier1ShortestPath(true), WithPreferHighNextHop(true)},
		} {
			spf := variant != 1
			pol, err := NewPolicy(cg, c.Tier1, opts...)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSolver(pol)
			e := NewEngine(pol)
			for rep := 0; rep < 12; rep++ {
				target := rng.Intn(cg.N())
				attacker := rng.Intn(cg.N())
				if target == attacker {
					continue
				}
				var blocked *asn.IndexSet
				if rep%2 == 1 {
					blocked = asn.NewIndexSet(cg.N())
					for k := 0; k < cg.N()/10; k++ {
						blocked.Add(rng.Intn(cg.N()))
					}
				}
				at := Attack{Target: target, Attacker: attacker, SubPrefix: rep%3 == 0}
				so := mustSolve(t, s, at, blocked)
				eo, _, err := e.Run(at, blocked, false)
				if err != nil {
					t.Fatalf("trial %d rep %d: engine: %v", trial, rep, err)
				}
				if msg, ok := outcomesEqual(so, eo); !ok {
					for i := 0; i < cg.N(); i++ {
						if so.Origin(i) != eo.Origin(i) || so.Class(i) != eo.Class(i) || so.Dist(i) != eo.Dist(i) || so.NextHop(i) != eo.NextHop(i) {
							t.Logf("node %d (AS%v): solver{%v %d %d nh=%d} engine{%v %d %d nh=%d}",
								i, cg.ASN(i),
								so.Class(i), so.Origin(i), so.Dist(i), so.NextHop(i),
								eo.Class(i), eo.Origin(i), eo.Dist(i), eo.NextHop(i))
						}
					}
					t.Fatalf("trial %d rep %d spf=%v attack %d→%d subprefix=%v: %s",
						trial, rep, spf, attacker, target, at.SubPrefix, msg)
				}
			}
		}
	}
}

func TestEngineTrace(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	e := NewEngine(pol)
	target := nodeIx(t, g, 20)
	attacker := nodeIx(t, g, 22)
	o, tr := mustRun(t, e, Attack{Target: target, Attacker: attacker}, nil, true)
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace collected")
	}
	if tr.Generations < 2 {
		t.Errorf("generations = %d, want ≥ 2", tr.Generations)
	}
	// Generation 1 must contain exactly the origins' initial announcements.
	gen1 := tr.EventsInGen(1)
	if len(gen1) == 0 {
		t.Fatal("no generation-1 events")
	}
	for _, ev := range gen1 {
		if int(ev.From) != target && int(ev.From) != attacker {
			t.Errorf("gen-1 event from %d, want only origins", ev.From)
		}
		if ev.Withdraw {
			t.Error("gen-1 withdrawal")
		}
	}
	// Accepted events must be consistent with the final outcome: for every
	// polluted node some accepted attacker-origin event targeted it.
	acceptedAttacker := map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.Accepted && ev.Origin == OriginAttacker {
			acceptedAttacker[ev.To] = true
		}
	}
	for i := 0; i < g.N(); i++ {
		if o.Polluted(i) && !acceptedAttacker[int32(i)] {
			t.Errorf("node %v polluted but no accepted attacker event", g.ASN(i))
		}
	}
	// Generations must be contiguous from 1.
	seen := map[int]bool{}
	for _, ev := range tr.Events {
		seen[ev.Gen] = true
	}
	for gen := 1; gen <= tr.Generations; gen++ {
		if !seen[gen] {
			t.Errorf("no events in generation %d of %d", gen, tr.Generations)
		}
	}
}

func TestEngineConvergenceGuard(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	e := NewEngine(pol)
	e.MaxGenerations = 1 // absurdly tight: must trip the guard
	_, _, err := e.Run(Attack{Target: nodeIx(t, g, 20), Attacker: nodeIx(t, g, 22)}, nil, false)
	if err == nil {
		t.Fatal("expected convergence-guard error")
	}
}

func TestEngineGenerationsReasonable(t *testing.T) {
	// The paper reports convergence within 5–10 generations at Internet
	// scale; a 1,000-node synthetic graph should be comparable.
	g := topology.MustGenerate(topology.DefaultParams(1000))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(pol)
	_, tr := mustRun(t, e, Attack{Target: 5, Attacker: con.Graph.N() - 3}, nil, true)
	if tr.Generations > 20 {
		t.Errorf("converged in %d generations, want ≤ 20", tr.Generations)
	}
}

// TestEngineTraceProperties: every traced message must travel between
// adjacent nodes, and a withdrawal must follow an earlier announcement
// from the same sender to the same receiver.
func TestEngineTraceProperties(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultParams(400))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := NewPolicy(cg, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(pol)
	_, tr, err := e.Run(Attack{Target: 2, Attacker: cg.N() - 1}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ from, to int32 }
	announced := map[pair]bool{}
	withdrawals := 0
	for _, ev := range tr.Events {
		if cg.Rel(int(ev.From), int(ev.To)) == 0 {
			t.Fatalf("message between non-adjacent nodes %d → %d", ev.From, ev.To)
		}
		key := pair{ev.From, ev.To}
		if ev.Withdraw {
			withdrawals++
			if !announced[key] {
				t.Fatalf("withdrawal %d → %d without prior announcement", ev.From, ev.To)
			}
		} else {
			announced[key] = true
		}
		if ev.Gen < 1 || ev.Gen > tr.Generations {
			t.Fatalf("event generation %d outside [1, %d]", ev.Gen, tr.Generations)
		}
	}
	t.Logf("trace: %d events, %d withdrawals, %d generations",
		len(tr.Events), withdrawals, tr.Generations)
}
