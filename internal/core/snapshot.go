package core

import "fmt"

// Snapshot is the immutable converged baseline for one (Policy, target):
// the routing state with the target announcing alone and no attacker in
// the plane. Because every defense mechanism only ever filters
// attacker-origin routes (scenario.rejects returns false for any other
// origin), the no-attack baseline is identical under every Defense — one
// Snapshot per target serves queries under arbitrary defense configs.
//
// A Snapshot is plain data: safe for concurrent reads, shared across any
// number of DeltaSolvers, and valid as long as the Policy it was built
// from. Memory is ~7 bytes per node plus a small tier-1 side store.
type Snapshot struct {
	pol    *Policy
	target int

	// Final converged baseline per node. class ClassNone ⇒ no route.
	// Origin is implicitly OriginTarget for every routed node.
	class   []RouteClass
	dist    []int16
	nexthop []int32

	// Post-stage-1 values of the tier-1 nodes, in ascending node order
	// (only meaningful when the policy runs tier-1 SPF): stage 2 may
	// replace a tier-1's customer route with a peer route, so its stage-1
	// value is not derivable from the final state. For every other node
	// the stage-1 value is derivable: final class origin/customer means
	// the stage-1 value is the final value, anything else means the node
	// was unassigned after stage 1.
	t1Nodes []int32
	t1Class []RouteClass
	t1Dist  []int16
	t1NH    []int32
}

// BuildSnapshot computes the converged baseline for target on a scratch
// solver. Use (*Solver).BuildSnapshot to reuse an existing solver's
// buffers on the build path.
func BuildSnapshot(pol *Policy, target int) (*Snapshot, error) {
	return NewSolver(pol).BuildSnapshot(target)
}

// BuildSnapshot computes the converged baseline for target, reusing this
// solver's buffers for the solve. The returned Snapshot is detached: it
// stays valid across further solver runs.
func (s *Solver) BuildSnapshot(target int) (*Snapshot, error) {
	n := s.pol.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("snapshot: target %d out of range (n %d)", target, n)
	}
	sc := &scenario{}
	s.epoch++
	s.maxDist = 0
	s.frontier = s.frontier[:0]
	s.assign(target, ClassOrigin, 0, -1, OriginTarget)
	s.frontier = append(s.frontier, int32(target))
	s.stageCustomer(sc)

	snap := &Snapshot{pol: s.pol, target: target}
	if s.pol.tier1SPF {
		for i := 0; i < n; i++ {
			if !s.pol.tier1[i] {
				continue
			}
			snap.t1Nodes = append(snap.t1Nodes, int32(i))
			if s.assigned(int32(i)) {
				snap.t1Class = append(snap.t1Class, s.class[i])
				snap.t1Dist = append(snap.t1Dist, s.dist[i])
				snap.t1NH = append(snap.t1NH, s.nexthop[i])
			} else {
				snap.t1Class = append(snap.t1Class, ClassNone)
				snap.t1Dist = append(snap.t1Dist, 0)
				snap.t1NH = append(snap.t1NH, -1)
			}
		}
	}

	s.stagePeer(sc)
	s.stageProvider(sc)

	snap.class = make([]RouteClass, n)
	snap.dist = make([]int16, n)
	snap.nexthop = make([]int32, n)
	for i := 0; i < n; i++ {
		if s.assigned(int32(i)) {
			snap.class[i] = s.class[i]
			snap.dist[i] = s.dist[i]
			snap.nexthop[i] = s.nexthop[i]
		} else {
			snap.class[i] = ClassNone
			snap.nexthop[i] = -1
		}
	}
	return snap, nil
}

// Target returns the node whose announcement the baseline converged on.
func (sn *Snapshot) Target() int { return sn.target }

// N returns the node count.
func (sn *Snapshot) N() int { return len(sn.class) }

// Policy returns the policy the snapshot was built over.
func (sn *Snapshot) Policy() *Policy { return sn.pol }

// HasRoute reports whether node i selected a route to the target in the
// baseline.
func (sn *Snapshot) HasRoute(i int) bool { return sn.class[i] != ClassNone }

// Class returns node i's baseline route class.
func (sn *Snapshot) Class(i int) RouteClass { return sn.class[i] }

// Dist returns node i's baseline AS-path length, or -1 without a route.
func (sn *Snapshot) Dist(i int) int16 {
	if sn.class[i] == ClassNone {
		return -1
	}
	return sn.dist[i]
}

// NextHop returns node i's baseline next hop, or -1 at the origin or an
// unrouted node.
func (sn *Snapshot) NextHop(i int) int32 {
	if sn.class[i] == ClassNone || sn.class[i] == ClassOrigin {
		return -1
	}
	return sn.nexthop[i]
}
