package core

// OutcomeView is the read-only surface shared by a full *Outcome and a
// *DeltaOutcome: everything measurement code (pollution accounting,
// probe triggering, path export reconstruction) reads from a converged
// state. Extractors written against the view run unchanged on either
// solve path, which is what lets the query service answer with a delta
// repair while staying result-identical to the batch tools.
type OutcomeView interface {
	// N returns the node count of the solved plane.
	N() int
	// HasRoute reports whether node i selected any route.
	HasRoute(i int) bool
	// Class returns node i's selected route class (ClassNone without a
	// route).
	Class(i int) RouteClass
	// Dist returns node i's AS-path length, or -1 without a route.
	Dist(i int) int16
	// NextHop returns the neighbor node i forwards through, or -1 at an
	// origin or unrouted node.
	NextHop(i int) int32
	// Origin returns which origin node i routes to.
	Origin(i int) int8
	// Polluted reports whether node i selected a route to the attacker.
	Polluted(i int) bool
	// PollutedCount returns the number of polluted ASes.
	PollutedCount() int
}

// Both solve paths expose the measurement surface.
var (
	_ OutcomeView = (*Outcome)(nil)
	_ OutcomeView = (*DeltaOutcome)(nil)
)
