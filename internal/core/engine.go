package core

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/xmaps"
)

// Event records one BGP message delivery during an engine run, for
// propagation analysis and the paper's Figure-1 polar visualizations
// (red = bogus announcement accepted, green = rejected).
type Event struct {
	Gen      int   // generation (simulated clock tick), starting at 1
	From     int32 // sending node
	To       int32 // receiving node
	Origin   int8  // which origin the advertised route leads to
	Withdraw bool  // true for route withdrawals
	// Accepted reports whether the receiver's best route pointed at the
	// sender once the generation converged (i.e. the message "won").
	Accepted bool
}

// Trace accumulates engine events grouped by generation.
type Trace struct {
	Events      []Event
	Generations int

	// genEnd[g-1] is the index one past generation g's events: Events are
	// appended in generation order, so generation g spans
	// Events[genEnd[g-2]:genEnd[g-1]]. Maintained by the engine; traces
	// assembled by hand may leave it nil and fall back to a scan.
	genEnd []int
}

// EventsInGen returns the events delivered in generation g (1-based).
// With engine-maintained generation offsets this is an O(1) subslice of
// Events (polar-viz and propagation analysis call it once per generation;
// the old full rescan made those passes O(E·G)).
func (t *Trace) EventsInGen(g int) []Event {
	if g >= 1 && g <= len(t.genEnd) {
		start := 0
		if g > 1 {
			start = t.genEnd[g-2]
		}
		return t.Events[start:t.genEnd[g-1]]
	}
	var out []Event
	for _, e := range t.Events {
		if e.Gen == g {
			out = append(out, e)
		}
	}
	return out
}

// Engine is the faithful reproduction of the paper's object-oriented BGP
// simulator: per-AS router objects with Adj-RIB-In state exchange prefix
// announcements (and withdrawals) in synchronous generations until
// convergence. It produces bit-identical outcomes to Solver (property
// tested) at much higher cost; use it when the propagation process itself
// is the object of study.
type Engine struct {
	pol *Policy
	// MaxGenerations bounds the run as a safety net; the Gao–Rexford
	// policy structure used here always converges (the paper observes 5–10
	// generations). Zero means 4·N+64.
	MaxGenerations int
	// Depref lists nodes that apply PGBGP-style handling to bogus
	// announcements: instead of dropping them (the `blocked` set), they
	// treat attacker-origin routes as suspicious and select one only when
	// no legitimate alternative exists. Prefer-valid two-plane policies of
	// this shape are convergence-safe.
	Depref *asn.IndexSet

	// base lazily holds the solver that computes the defense-free
	// baseline route a leak scenario re-announces.
	base *Solver

	// SecureDeployed and SecureMode enable S*BGP-style path security
	// (Lychev, Goldberg & Schapira, SIGCOMM 2013 — the model whose
	// section 4 the paper corroborates): a route is *secure* when the
	// legitimate origin and every subsequent hop deploy S*BGP and sign it;
	// the attacker can never produce a secure route for the victim's
	// prefix. Deployed ASes rank security per SecureMode; non-deployed
	// ASes cannot verify signatures and ignore the attribute.
	SecureDeployed *asn.IndexSet
	SecureMode     SecureMode
}

// SecureMode is where security ranks in a deployed AS's route selection.
type SecureMode int8

const (
	// SecureOff disables path security.
	SecureOff SecureMode = 0
	// SecurityFirst ranks secure routes above LOCAL_PREF ("security 1st").
	SecurityFirst SecureMode = 1
	// SecuritySecond ranks security between LOCAL_PREF and path length.
	SecuritySecond SecureMode = 2
	// SecurityThird uses security only as the final tie-break before the
	// next-hop comparison ("security 3rd" — the deployment-friendly
	// policy real operators prefer).
	SecurityThird SecureMode = 3
)

// NewEngine returns an Engine over the policy.
func NewEngine(pol *Policy) *Engine {
	return &Engine{pol: pol}
}

// ribEntry is one Adj-RIB-In slot: the route most recently advertised by a
// particular neighbor.
type ribEntry struct {
	dist   int16 // as advertised (sender's own path length)
	origin int8
	secure bool // S*BGP: signed by the origin and every subsequent hop
}

type message struct {
	from, to int32
	withdraw bool
	dist     int16
	origin   int8
	secure   bool
}

// engineRun holds the mutable per-run state.
type engineRun struct {
	pol    *Policy
	sc     *scenario
	depref *asn.IndexSet

	secureDeployed *asn.IndexSet
	secureMode     SecureMode
	secure         []bool // per node: selected route is secure

	// Adj-RIB-In, split by the advertising neighbor's relationship so the
	// route class is implicit.
	ribCust []map[int32]ribEntry
	ribPeer []map[int32]ribEntry
	ribProv []map[int32]ribEntry

	has     []bool
	class   []RouteClass
	dist    []int16
	nexthop []int32
	origin  []int8

	queue []message
	next  []message
	trace *Trace
	gen   int
}

// Run executes the attack to convergence and returns the outcome plus the
// full message trace (trace collection is cheap relative to the engine
// itself; pass collectTrace=false to skip storing events). Run is
// RunDefense under the paper's original ROV-only defense shape.
func (e *Engine) Run(at Attack, blocked *asn.IndexSet, collectTrace bool) (*Outcome, *Trace, error) {
	return e.RunDefense(at, Defense{Blocked: blocked}, collectTrace)
}

// RunDefense executes the attack under the full defense model (ROV, ASPA,
// Peerlock), resolved through the same scenario layer the Solver uses —
// the two remain bit-identical for every attack kind.
func (e *Engine) RunDefense(at Attack, def Defense, collectTrace bool) (*Outcome, *Trace, error) {
	n := e.pol.N()
	if err := validateAttack(e.pol, at); err != nil {
		return nil, nil, fmt.Errorf("engine: %w", err)
	}
	sc, err := buildScenario(e.pol, at, def, func() (int16, bool) {
		if e.base == nil {
			e.base = NewSolver(e.pol)
		}
		return e.base.baselineDist(at)
	})
	if err != nil {
		return nil, nil, err
	}
	maxGen := e.MaxGenerations
	if maxGen == 0 {
		maxGen = 4*n + 64
	}

	r := &engineRun{
		pol:        e.pol,
		sc:         &sc,
		depref:     e.Depref,
		secureMode: e.SecureMode,
		ribCust:    make([]map[int32]ribEntry, n),
		ribPeer:    make([]map[int32]ribEntry, n),
		ribProv:    make([]map[int32]ribEntry, n),
		has:        make([]bool, n),
		class:      make([]RouteClass, n),
		dist:       make([]int16, n),
		nexthop:    make([]int32, n),
		origin:     make([]int8, n),
		secure:     make([]bool, n),
	}
	if e.SecureMode != SecureOff {
		r.secureDeployed = e.SecureDeployed
	}
	if collectTrace {
		r.trace = &Trace{}
	}

	// The attacker's advertised path starts at the scenario's seed depth
	// (0 for an origin hijack, 1 for a forged-origin prepend, the leaked
	// route's real length for a leak); a leak with no route to leak never
	// announces at all.
	originate := func(node int, org int8, d int16) {
		r.has[node] = true
		r.class[node] = ClassOrigin
		r.dist[node] = d
		r.nexthop[node] = -1
		r.origin[node] = org
		// Only the legitimate origin can produce a route-origin signature
		// for the victim's prefix; a deployed attacker still cannot.
		r.secure[node] = r.secureMode != SecureOff && org == OriginTarget &&
			r.secureDeployed != nil && r.secureDeployed.Contains(node)
		r.enqueueUpdates(int32(node), ClassNone, -1)
	}
	if at.SubPrefix {
		originate(at.Attacker, OriginAttacker, sc.seedDist)
	} else {
		originate(at.Target, OriginTarget, 0)
		if sc.seedAttacker {
			originate(at.Attacker, OriginAttacker, sc.seedDist)
		}
	}

	for len(r.next) > 0 {
		r.gen++
		if r.gen > maxGen {
			return nil, nil, fmt.Errorf("engine: no convergence after %d generations", maxGen)
		}
		r.queue, r.next = r.next, r.queue[:0]
		touched := r.deliverAll()
		r.recomputeAll(touched)
		if r.trace != nil {
			r.trace.genEnd = append(r.trace.genEnd, len(r.trace.Events))
		}
	}

	stamp := make([]int32, n)
	for i := 0; i < n; i++ {
		if r.has[i] {
			stamp[i] = 1
		}
	}
	out := &Outcome{
		Target: at.Target, Attacker: at.Attacker,
		n: n, epoch: 1,
		stamp: stamp, class: r.class, dist: r.dist, nexthop: r.nexthop, origin: r.origin,
	}
	if r.trace != nil {
		r.trace.Generations = r.gen
	}
	return out, r.trace, nil
}

// deliverAll applies every queued message to Adj-RIB-In state and returns
// the set of nodes whose RIB changed.
func (r *engineRun) deliverAll() map[int32]bool {
	touched := make(map[int32]bool)
	for _, m := range r.queue {
		rib := r.ribFor(m.to, m.from)
		if rib == nil {
			continue // stale message across a mutated graph: cannot happen
		}
		if m.withdraw {
			if _, ok := rib[m.from]; ok {
				delete(rib, m.from)
				touched[m.to] = true
			}
		} else {
			// Validation drops bogus announcements pre-RIB: the paper's
			// prevention model ("something exists to prevent a router from
			// accepting and propagating a bogus announcement"), resolved
			// per scenario (ROV, ASPA or Peerlock — see scenario.go). An
			// update implicitly replaces the neighbor's previous
			// advertisement, so a rejected update still clears it.
			if r.sc.rejects(r.pol, m.to, m.origin) {
				if _, ok := rib[m.from]; ok {
					delete(rib, m.from)
					touched[m.to] = true
				}
				continue
			}
			rib[m.from] = ribEntry{dist: m.dist, origin: m.origin, secure: m.secure}
			touched[m.to] = true
		}
	}
	if r.trace != nil {
		for _, m := range r.queue {
			r.trace.Events = append(r.trace.Events, Event{
				Gen: r.gen, From: m.from, To: m.to, Origin: m.origin, Withdraw: m.withdraw,
			})
		}
	}
	return touched
}

// ribFor returns the Adj-RIB-In map of `to` that holds routes advertised
// by `from`, lazily allocated, or nil if they are not adjacent.
func (r *engineRun) ribFor(to, from int32) map[int32]ribEntry {
	pick := func(maps []map[int32]ribEntry) map[int32]ribEntry {
		if maps[to] == nil {
			maps[to] = make(map[int32]ribEntry, 4)
		}
		return maps[to]
	}
	for _, c := range r.pol.Customers(int(to)) {
		if c == from {
			return pick(r.ribCust)
		}
	}
	for _, p := range r.pol.Peers(int(to)) {
		if p == from {
			return pick(r.ribPeer)
		}
	}
	for _, p := range r.pol.Providers(int(to)) {
		if p == from {
			return pick(r.ribProv)
		}
	}
	return nil
}

// recomputeAll re-selects best routes for all touched nodes and enqueues
// the resulting updates/withdrawals for the next generation.
func (r *engineRun) recomputeAll(touched map[int32]bool) {
	// Recompute in ascending node order: map iteration order would leak
	// into the next generation's message queue — and through it into the
	// event trace — breaking bit-identical reruns.
	for _, v := range xmaps.SortedKeys(touched) {
		r.recompute(v)
	}
	if r.trace != nil {
		// Mark which of this generation's messages ended up winning.
		start := len(r.trace.Events) - len(r.queue)
		for i := start; i < len(r.trace.Events); i++ {
			ev := &r.trace.Events[i]
			if !ev.Withdraw && r.has[ev.To] && r.nexthop[ev.To] == ev.From && r.origin[ev.To] == ev.Origin {
				ev.Accepted = true
			}
		}
	}
}

func (r *engineRun) recompute(v int32) {
	oldHas, oldClass, oldDist, oldNH, oldOrigin := r.has[v], r.class[v], r.dist[v], r.nexthop[v], r.origin[v]

	// Origin nodes never change their mind.
	if oldHas && oldClass == ClassOrigin {
		return
	}

	// Two selection planes: at PGBGP nodes, attacker-origin routes are
	// suspicious and compete only when no legitimate route exists.
	depref := r.depref != nil && r.depref.Contains(int(v))
	oldSecure := r.secure[v]
	bestClass, bestDist, bestNH, bestOrigin, bestSecure := ClassNone, int16(0), int32(-1), OriginNone, false
	suspClass, suspDist, suspNH, suspOrigin := ClassNone, int16(0), int32(-1), OriginNone
	// Scan each Adj-RIB-In in ascending neighbor order. The comparator
	// below is a total order, so the winner is order-independent, but a
	// pinned scan order keeps the tie-break path itself reproducible.
	consider := func(cls RouteClass, rib map[int32]ribEntry) {
		for _, from := range xmaps.SortedKeys(rib) {
			ent := rib[from]
			d := ent.dist + 1
			if depref && ent.origin == OriginAttacker {
				if suspClass == ClassNone || r.pol.better(int(v), cls, d, from, suspClass, suspDist, suspNH) {
					suspClass, suspDist, suspNH, suspOrigin = cls, d, from, ent.origin
				}
				continue
			}
			if bestClass == ClassNone || r.betterRoute(v, cls, d, from, ent.secure, bestClass, bestDist, bestNH, bestSecure) {
				bestClass, bestDist, bestNH, bestOrigin, bestSecure = cls, d, from, ent.origin, ent.secure
			}
		}
	}
	consider(ClassCustomer, r.ribCust[v])
	consider(ClassPeer, r.ribPeer[v])
	consider(ClassProvider, r.ribProv[v])
	if bestClass == ClassNone && suspClass != ClassNone {
		bestClass, bestDist, bestNH, bestOrigin, bestSecure = suspClass, suspDist, suspNH, suspOrigin, false
	}

	newHas := bestClass != ClassNone
	if newHas == oldHas && bestClass == oldClass && bestDist == oldDist && bestNH == oldNH &&
		bestOrigin == oldOrigin && bestSecure == oldSecure {
		return
	}
	r.has[v] = newHas
	r.class[v] = bestClass
	r.dist[v] = bestDist
	r.nexthop[v] = bestNH
	r.origin[v] = bestOrigin
	r.secure[v] = bestSecure
	if !oldHas {
		oldClass, oldNH = ClassNone, -1
	}
	r.enqueueUpdates(v, oldClass, oldNH)
}

// betterRoute extends the policy preference with the S*BGP security rank
// at deployed nodes. With security off (or equal bits, or an undeployed
// node that cannot verify signatures) it is exactly Policy.better.
func (r *engineRun) betterRoute(v int32, clsA RouteClass, dA int16, nhA int32, secA bool, clsB RouteClass, dB int16, nhB int32, secB bool) bool {
	if r.secureMode == SecureOff || secA == secB ||
		r.secureDeployed == nil || !r.secureDeployed.Contains(int(v)) {
		return r.pol.better(int(v), clsA, dA, nhA, clsB, dB, nhB)
	}
	// Build the node's base key order (tier-1 SPF puts length before
	// class) and insert the security key at the mode's rank.
	type key struct{ a, b int }
	classKey := key{int(clsA), int(clsB)}
	distKey := key{int(dA), int(dB)}
	secKey := key{boolRank(secA), boolRank(secB)}
	base := []key{classKey, distKey}
	if r.pol.tier1SPF && r.pol.tier1[v] {
		base = []key{distKey, classKey}
	}
	var order []key
	switch r.secureMode {
	case SecurityFirst:
		order = []key{secKey, base[0], base[1]}
	case SecuritySecond:
		order = []key{base[0], secKey, base[1]}
	default: // SecurityThird
		order = []key{base[0], base[1], secKey}
	}
	for _, k := range order {
		if k.a != k.b {
			return k.a < k.b
		}
	}
	return r.pol.betterNH(nhA, nhB)
}

// boolRank maps secure=true to the preferred (smaller) rank.
func boolRank(secure bool) int {
	if secure {
		return 0
	}
	return 1
}

// enqueueUpdates schedules announcements/withdrawals to v's neighbors
// after its best route changed from (oldClass, oldNH) to the current one.
// Split horizon: a route is never advertised back to its next hop.
func (r *engineRun) enqueueUpdates(v int32, oldClass RouteClass, oldNH int32) {
	newClass, newNH := ClassNone, int32(-1)
	if r.has[v] {
		newClass, newNH = r.class[v], r.nexthop[v]
	}
	// An advert stays inside the secure chain only if this hop also signs
	// it (selected route secure AND this AS deploys S*BGP).
	advSecure := r.has[v] && r.secure[v] &&
		r.secureDeployed != nil && r.secureDeployed.Contains(int(v))
	send := func(to int32, wasExporting, nowExporting bool) {
		switch {
		case nowExporting:
			r.next = append(r.next, message{from: v, to: to, dist: r.dist[v], origin: r.origin[v], secure: advSecure})
		case wasExporting:
			r.next = append(r.next, message{from: v, to: to, withdraw: true})
		}
	}
	for _, c := range r.pol.Customers(int(v)) {
		send(c, oldClass != ClassNone && c != oldNH, newClass != ClassNone && c != newNH)
	}
	for _, p := range r.pol.Peers(int(v)) {
		send(p, exportsToPeerOrProv(oldClass) && p != oldNH, exportsToPeerOrProv(newClass) && p != newNH)
	}
	for _, p := range r.pol.Providers(int(v)) {
		send(p, exportsToPeerOrProv(oldClass) && p != oldNH, exportsToPeerOrProv(newClass) && p != newNH)
	}
}

// exportsToPeerOrProv reports whether a best route of the given class is
// announced to peers and providers (only origin/customer routes are).
func exportsToPeerOrProv(c RouteClass) bool {
	return c == ClassOrigin || c == ClassCustomer
}
