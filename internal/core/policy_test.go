package core

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// buildPolicy constructs a Policy over a topology built from links, with
// tier-1s inferred by Classify.
func buildPolicy(t *testing.T, links []link, opts ...PolicyOption) (*Policy, *topology.Graph) {
	t.Helper()
	b := topology.NewBuilder()
	for _, l := range links {
		if err := b.AddLink(l.a, l.b, l.rel); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	c := topology.Classify(g, topology.ClassifyOptions{Tier2MinCustomers: 1})
	pol, err := NewPolicy(g, c.Tier1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pol, g
}

type link struct {
	a, b asn.ASN
	rel  topology.Rel
}

// diamond is the canonical valley-free test topology:
//
//	   T1a(1) == T1b(2)       tier-1 peers
//	   /    \       \
//	A(10)   B(11)   C(12)     customers of tier-1s; A peers with B
//	 |        |       |
//	a(20)    b(21)   c(22)    stubs
var diamond = []link{
	{1, 2, topology.RelPeer},
	{1, 10, topology.RelCustomer},
	{1, 11, topology.RelCustomer},
	{2, 12, topology.RelCustomer},
	{10, 11, topology.RelPeer},
	{10, 20, topology.RelCustomer},
	{11, 21, topology.RelCustomer},
	{12, 22, topology.RelCustomer},
}

func nodeIx(t *testing.T, g *topology.Graph, a asn.ASN) int {
	t.Helper()
	i, ok := g.Index(a)
	if !ok {
		t.Fatalf("ASN %v missing", a)
	}
	return i
}

func TestNewPolicyRejectsSiblings(t *testing.T) {
	b := topology.NewBuilder()
	if err := b.AddLink(1, 2, topology.RelSibling); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLink(1, 3, topology.RelCustomer); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if _, err := NewPolicy(g, nil); err == nil {
		t.Fatal("sibling graph accepted; contraction must be explicit")
	}
}

func TestNewPolicyRejectsBadTier1(t *testing.T) {
	b := topology.NewBuilder()
	if err := b.AddLink(1, 2, topology.RelCustomer); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if _, err := NewPolicy(g, []int{5}); err == nil {
		t.Fatal("out-of-range tier-1 index accepted")
	}
}

func TestPolicyAdjacency(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	a := nodeIx(t, g, 10)
	if got := len(pol.Providers(a)); got != 1 {
		t.Errorf("providers(A) = %d, want 1", got)
	}
	if got := len(pol.Customers(a)); got != 1 {
		t.Errorf("customers(A) = %d, want 1", got)
	}
	if got := len(pol.Peers(a)); got != 1 {
		t.Errorf("peers(A) = %d, want 1", got)
	}
	t1 := nodeIx(t, g, 1)
	if !pol.IsTier1(t1) {
		t.Error("AS1 should be tier-1")
	}
	if pol.IsTier1(a) {
		t.Error("AS10 should not be tier-1")
	}
}

func TestExportRules(t *testing.T) {
	cases := []struct {
		class RouteClass
		rel   topology.Rel
		want  bool
	}{
		{ClassOrigin, topology.RelProvider, true},
		{ClassOrigin, topology.RelPeer, true},
		{ClassOrigin, topology.RelCustomer, true},
		{ClassCustomer, topology.RelProvider, true},
		{ClassCustomer, topology.RelPeer, true},
		{ClassCustomer, topology.RelCustomer, true},
		{ClassPeer, topology.RelProvider, false},
		{ClassPeer, topology.RelPeer, false},
		{ClassPeer, topology.RelCustomer, true},
		{ClassProvider, topology.RelProvider, false},
		{ClassProvider, topology.RelPeer, false},
		{ClassProvider, topology.RelCustomer, true},
		{ClassNone, topology.RelCustomer, false},
	}
	for _, c := range cases {
		if got := exportsTo(c.class, c.rel); got != c.want {
			t.Errorf("exportsTo(%v, %v) = %v, want %v", c.class, c.rel, got, c.want)
		}
	}
}

func TestBetterOrdering(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	v := nodeIx(t, g, 10) // non-tier-1
	// Customer beats peer regardless of length.
	if !pol.better(v, ClassCustomer, 9, 5, ClassPeer, 1, 1) {
		t.Error("customer class must beat peer class at non-tier-1")
	}
	// Shorter wins within a class.
	if !pol.better(v, ClassPeer, 2, 5, ClassPeer, 3, 1) {
		t.Error("shorter path must win within class")
	}
	// Next-hop id breaks exact ties.
	if !pol.better(v, ClassPeer, 2, 1, ClassPeer, 2, 5) {
		t.Error("lower next-hop must win ties")
	}
	if pol.better(v, ClassPeer, 2, 5, ClassPeer, 2, 1) {
		t.Error("higher next-hop must lose ties")
	}
	// Anything beats no route.
	if !pol.better(v, ClassProvider, 9, 5, ClassNone, 0, -1) {
		t.Error("a route must beat no route")
	}
	if pol.better(v, ClassNone, 0, -1, ClassProvider, 9, 5) {
		t.Error("no route must not beat a route")
	}

	t1 := nodeIx(t, g, 1) // tier-1: shortest path first
	if !pol.better(t1, ClassPeer, 1, 5, ClassCustomer, 2, 1) {
		t.Error("tier-1 must prefer shorter peer route over longer customer route")
	}
	if pol.better(t1, ClassPeer, 2, 1, ClassCustomer, 2, 5) {
		t.Error("tier-1 equal-length tie must fall back to class preference")
	}
}

func TestBetterOrderingTier1Disabled(t *testing.T) {
	pol, g := buildPolicy(t, diamond, WithTier1ShortestPath(false))
	t1 := nodeIx(t, g, 1)
	if pol.better(t1, ClassPeer, 1, 5, ClassCustomer, 2, 1) {
		t.Error("with SPF disabled, tier-1 must use class preference")
	}
	if pol.Tier1ShortestPath() {
		t.Error("Tier1ShortestPath should report false")
	}
}
