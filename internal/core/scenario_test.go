package core

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func TestAttackKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseAttackKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAttackKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if k, err := ParseAttackKind(""); err != nil || k != KindOrigin {
		t.Errorf("empty scenario = %v, %v; want origin", k, err)
	}
	if _, err := ParseAttackKind("bogus"); err == nil {
		t.Error("ParseAttackKind accepted bogus kind")
	}
}

func TestDefenseMechRoundTrip(t *testing.T) {
	cases := []DefenseMech{0, MechROV, MechASPA, MechPeerlock, MechROV | MechASPA, MechROV | MechASPA | MechPeerlock}
	for _, m := range cases {
		got, err := ParseDefenseMech(m.String())
		if err != nil || got != m {
			t.Errorf("ParseDefenseMech(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseDefenseMech("rov+bogus"); err == nil {
		t.Error("ParseDefenseMech accepted bogus mechanism")
	}
	set := asn.NewIndexSet(4)
	set.Add(1)
	d := (MechROV | MechPeerlock).Deploy(set)
	if d.Blocked != set || d.ASPA != nil || !d.Peerlock {
		t.Errorf("Deploy mismatch: %+v", d)
	}
	if !(Defense{}).IsZero() || d.IsZero() {
		t.Error("IsZero mismatch")
	}
}

// scenarioWorld builds a contracted random topology and its policy for
// scenario tests.
func scenarioWorld(t *testing.T, n int, seed int64, opts ...PolicyOption) (*Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	p := topology.DefaultParams(n)
	p.Seed = seed
	g := topology.MustGenerate(p)
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := NewPolicy(con.Graph, c.Tier1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

// TestSolveDefenseBackCompat: Solve(at, blocked) and the explicit
// ROV-only Defense must be the same computation, for every kind.
func TestSolveDefenseBackCompat(t *testing.T) {
	pol, g, _ := scenarioWorld(t, 300, 5)
	s := NewSolver(pol)
	s2 := NewSolver(pol)
	blocked := asn.NewIndexSet(g.N())
	for i := 0; i < g.N(); i += 5 {
		blocked.Add(i)
	}
	for _, kind := range Kinds() {
		at := Attack{Target: 3, Attacker: g.N() - 2, Kind: kind}
		a, err := s.Solve(at, blocked)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.SolveDefense(at, RovOnly(blocked))
		if err != nil {
			t.Fatal(err)
		}
		if msg, ok := outcomesEqual(a, b); !ok {
			t.Fatalf("kind %v: Solve vs SolveDefense(RovOnly): %s", kind, msg)
		}
	}
}

// TestScenarioSemantics checks the defense-applicability matrix directly:
// which mechanism stops which kind.
func TestScenarioSemantics(t *testing.T) {
	pol, g, c := scenarioWorld(t, 400, 11)
	n := g.N()
	s := NewSolver(pol)
	everyone := asn.NewIndexSet(n)
	for i := 0; i < n; i++ {
		everyone.Add(i)
	}
	target, attacker := 2, n-3
	solve := func(kind AttackKind, def Defense) *Outcome {
		t.Helper()
		o, err := s.SolveDefense(Attack{Target: target, Attacker: attacker, Kind: kind}, def)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}

	// Universal ROV swallows a type-0 hijack whole...
	if p := solve(KindOrigin, RovOnly(everyone)).PollutedCount(); p != 0 {
		t.Errorf("origin hijack under universal ROV polluted %d ASes, want 0", p)
	}
	// ...but is blind to a forged origin: same pollution as undefended.
	undefended := solve(KindForgedOrigin, Defense{}).PollutedCount()
	if p := solve(KindForgedOrigin, RovOnly(everyone)).PollutedCount(); p != undefended {
		t.Errorf("forged-origin under universal ROV polluted %d, want undefended %d (ROV must not help)", p, undefended)
	}
	// Universal ASPA stops the forged origin (the attacker here is not a
	// provider of the target — the forged adjacency is detectable).
	if aspaAuthorizedProvider(pol, attacker, target) {
		t.Fatalf("test setup: attacker %d is a provider of target %d", attacker, target)
	}
	if p := solve(KindForgedOrigin, Defense{ASPA: everyone}).PollutedCount(); p != 0 {
		t.Errorf("forged-origin under universal ASPA polluted %d ASes, want 0", p)
	}
	// A forged origin from a real provider of the target is plausible:
	// ASPA must NOT filter it.
	var provTarget, cust int = -1, -1
	for v := 0; v < n && provTarget < 0; v++ {
		if len(pol.Customers(v)) > 0 && len(pol.Providers(int(pol.Customers(v)[0]))) > 0 {
			cust = int(pol.Customers(v)[0])
			provTarget = v
		}
	}
	if provTarget >= 0 {
		prov := int(pol.Providers(cust)[0])
		plausible, err := s.SolveDefense(Attack{Target: cust, Attacker: prov, Kind: KindForgedOrigin}, Defense{ASPA: everyone})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := NewSolver(pol).SolveDefense(Attack{Target: cust, Attacker: prov, Kind: KindForgedOrigin}, Defense{})
		if err != nil {
			t.Fatal(err)
		}
		if plausible.PollutedCount() != bare.PollutedCount() {
			t.Errorf("plausible forged-origin (attacker is a real provider): ASPA changed pollution %d → %d",
				bare.PollutedCount(), plausible.PollutedCount())
		}
	}
	// Route leak: ROV blind, ASPA sees the valley.
	leakBare := solve(KindRouteLeak, Defense{}).PollutedCount()
	if p := solve(KindRouteLeak, RovOnly(everyone)).PollutedCount(); p != leakBare {
		t.Errorf("route leak under universal ROV polluted %d, want undefended %d", p, leakBare)
	}
	if p := solve(KindRouteLeak, Defense{ASPA: everyone}).PollutedCount(); p != 0 {
		t.Errorf("route leak under universal ASPA polluted %d ASes, want 0", p)
	}
	// Peerlock: every tier-1 refuses the leaked route; non-tier-1 pollution
	// may remain, tier-1 pollution may not.
	lock := solve(KindRouteLeak, Defense{Peerlock: true})
	for _, t1 := range c.Tier1 {
		if lock.Polluted(t1) {
			t.Errorf("tier-1 %d polluted by a route leak despite Peerlock", t1)
		}
	}
	// Peerlock is leak-specific: a type-0 hijack sails past it.
	if p := solve(KindOrigin, Defense{Peerlock: true}).PollutedCount(); p == 0 {
		t.Error("origin hijack under Peerlock polluted nothing — Peerlock must not filter origin hijacks")
	}

	// The leaked route starts at the attacker's real route length.
	leak := solve(KindRouteLeak, Defense{})
	bd, ok := NewSolver(pol).baselineDist(Attack{Target: target, Attacker: attacker})
	if !ok {
		t.Fatal("attacker has no baseline route in a connected world")
	}
	if leak.Dist(attacker) != bd {
		t.Errorf("leak seeds at dist %d, want baseline %d", leak.Dist(attacker), bd)
	}
	// Forged origin seeds at path length 1.
	if d := solve(KindForgedOrigin, Defense{}).Dist(attacker); d != 1 {
		t.Errorf("forged-origin seeds at dist %d, want 1", d)
	}

	// Sub-prefix route leaks are invalid.
	if _, err := s.SolveDefense(Attack{Target: target, Attacker: attacker, Kind: KindRouteLeak, SubPrefix: true}, Defense{}); err == nil {
		t.Error("sub-prefix route leak accepted")
	}
	if _, _, err := NewEngine(pol).RunDefense(Attack{Target: target, Attacker: attacker, Kind: KindRouteLeak, SubPrefix: true}, Defense{}, false); err == nil {
		t.Error("engine accepted sub-prefix route leak")
	}
}

// TestEngineMatchesSolverScenarios extends the central equivalence
// property across the full scenario space: every attack kind × defense
// mechanism combination, on random topologies and attack pairs, under
// all three policy variants — solver and engine must converge to the
// bit-identical routing state.
func TestEngineMatchesSolverScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	mechs := []DefenseMech{0, MechROV, MechASPA, MechPeerlock, MechROV | MechASPA, MechASPA | MechPeerlock, MechROV | MechASPA | MechPeerlock}
	for trial := 0; trial < 3; trial++ {
		for variant, opts := range [][]PolicyOption{
			{WithTier1ShortestPath(true)},
			{WithTier1ShortestPath(false)},
			{WithTier1ShortestPath(true), WithPreferHighNextHop(true)},
		} {
			pol, g, _ := scenarioWorld(t, 300, int64(trial+40), opts...)
			s := NewSolver(pol)
			e := NewEngine(pol)
			for _, kind := range Kinds() {
				for mi, mech := range mechs {
					target := rng.Intn(g.N())
					attacker := rng.Intn(g.N())
					if target == attacker {
						continue
					}
					set := asn.NewIndexSet(g.N())
					for k := 0; k < g.N()/10; k++ {
						set.Add(rng.Intn(g.N()))
					}
					def := mech.Deploy(set)
					at := Attack{Target: target, Attacker: attacker, Kind: kind,
						SubPrefix: kind != KindRouteLeak && mi%3 == 0}
					so, err := s.SolveDefense(at, def)
					if err != nil {
						t.Fatalf("trial %d variant %d kind %v mech %v: solver: %v", trial, variant, kind, mech, err)
					}
					eo, _, err := e.RunDefense(at, def, false)
					if err != nil {
						t.Fatalf("trial %d variant %d kind %v mech %v: engine: %v", trial, variant, kind, mech, err)
					}
					if msg, ok := outcomesEqual(so, eo); !ok {
						for i := 0; i < g.N(); i++ {
							if so.Origin(i) != eo.Origin(i) || so.Class(i) != eo.Class(i) || so.Dist(i) != eo.Dist(i) || so.NextHop(i) != eo.NextHop(i) {
								t.Logf("node %d: solver{%v org=%d d=%d nh=%d} engine{%v org=%d d=%d nh=%d}",
									i, so.Class(i), so.Origin(i), so.Dist(i), so.NextHop(i),
									eo.Class(i), eo.Origin(i), eo.Dist(i), eo.NextHop(i))
							}
						}
						t.Fatalf("trial %d variant %d kind %v mech %v attack %d→%d subprefix=%v: %s",
							trial, variant, kind, mech, attacker, target, at.SubPrefix, msg)
					}
				}
			}
		}
	}
}

// TestTraceGenerationOffsets: the O(1) per-generation slicing must agree
// with a brute-force scan over the event list.
func TestTraceGenerationOffsets(t *testing.T) {
	pol, g, _ := scenarioWorld(t, 300, 8)
	e := NewEngine(pol)
	for _, kind := range Kinds() {
		_, tr, err := e.RunDefense(Attack{Target: 1, Attacker: g.N() - 1, Kind: kind}, Defense{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.genEnd) != tr.Generations {
			t.Fatalf("kind %v: %d generation offsets for %d generations", kind, len(tr.genEnd), tr.Generations)
		}
		for gen := 0; gen <= tr.Generations+1; gen++ {
			var want []Event
			for _, ev := range tr.Events {
				if ev.Gen == gen {
					want = append(want, ev)
				}
			}
			got := tr.EventsInGen(gen)
			if len(got) != len(want) {
				t.Fatalf("kind %v gen %d: EventsInGen returned %d events, scan found %d", kind, gen, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("kind %v gen %d event %d: %+v != %+v", kind, gen, i, got[i], want[i])
				}
			}
		}
		// A hand-built trace without offsets must still answer correctly.
		manual := &Trace{Events: tr.Events, Generations: tr.Generations}
		for gen := 1; gen <= tr.Generations; gen++ {
			if len(manual.EventsInGen(gen)) != len(tr.EventsInGen(gen)) {
				t.Fatalf("fallback scan disagrees in gen %d", gen)
			}
		}
	}
}
