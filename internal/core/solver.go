package core

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// Attack describes one hijack scenario: Attacker originates address space
// owned by Target. With SubPrefix set, the attacker announces a
// more-specific prefix, which wins longest-prefix-match forwarding
// everywhere it propagates — the legitimate covering announcement cannot
// compete, so only origin-validation filters stop it.
type Attack struct {
	Target   int
	Attacker int
	// SubPrefix selects a sub-prefix hijack instead of an exact-prefix
	// origin hijack.
	SubPrefix bool
}

// Solver computes the converged routing outcome of an attack in O(V+E)
// using the three-stage customer/peer/provider BFS. A Solver's buffers are
// reused across calls: the Outcome returned by Solve is only valid until
// the next Solve on the same Solver (Clone it to keep it). Solvers are not
// safe for concurrent use; create one per goroutine (they share the
// Policy).
type Solver struct {
	pol *Policy

	epoch   int32
	stamp   []int32 // stamp[i] == epoch ⇒ node i has a route this run
	class   []RouteClass
	dist    []int16
	nexthop []int32
	origin  []int8

	candStamp []int32 // per-level candidate marks
	candNH    []int32
	candDist  []int16
	candOrig  []int8

	frontier []int32
	nextQ    []int32
	candList []int32
	buckets  [][]int32
	tier1Buf []t1sel // stagePeer's SPF worklist, reused across Solve calls
	maxDist  int
}

// t1sel is one tier-1 node with its customer-route distance, the sort key
// of stagePeer's shortest-path-first pass.
type t1sel struct {
	node int32
	d    int16
}

// NewSolver returns a Solver over the policy.
func NewSolver(pol *Policy) *Solver {
	n := pol.N()
	return &Solver{
		pol:       pol,
		stamp:     make([]int32, n),
		class:     make([]RouteClass, n),
		dist:      make([]int16, n),
		nexthop:   make([]int32, n),
		origin:    make([]int8, n),
		candStamp: make([]int32, n),
		candNH:    make([]int32, n),
		candDist:  make([]int16, n),
		candOrig:  make([]int8, n),
	}
}

// Outcome is a view of one converged routing state. It remains valid only
// until the owning Solver/Engine runs again; call Clone to detach it.
type Outcome struct {
	Target   int
	Attacker int

	n       int
	epoch   int32
	stamp   []int32
	class   []RouteClass
	dist    []int16
	nexthop []int32
	origin  []int8
}

// N returns the node count.
func (o *Outcome) N() int { return o.n }

// HasRoute reports whether node i selected any route.
func (o *Outcome) HasRoute(i int) bool { return o.stamp[i] == o.epoch }

// Origin returns which origin node i routes to (OriginTarget,
// OriginAttacker, or OriginNone).
func (o *Outcome) Origin(i int) int8 {
	if !o.HasRoute(i) {
		return OriginNone
	}
	return o.origin[i]
}

// Class returns the route class node i selected.
func (o *Outcome) Class(i int) RouteClass {
	if !o.HasRoute(i) {
		return ClassNone
	}
	return o.class[i]
}

// Dist returns node i's AS-path length to its selected origin (0 at the
// origin itself); -1 without a route.
func (o *Outcome) Dist(i int) int16 {
	if !o.HasRoute(i) {
		return -1
	}
	return o.dist[i]
}

// NextHop returns the neighbor node i forwards through, or -1 at an origin
// or unrouted node.
func (o *Outcome) NextHop(i int) int32 {
	if !o.HasRoute(i) || o.class[i] == ClassOrigin {
		return -1
	}
	return o.nexthop[i]
}

// Polluted reports whether node i selected a route to the attacker.
// Origin nodes themselves are never counted as polluted.
func (o *Outcome) Polluted(i int) bool {
	return i != o.Attacker && o.HasRoute(i) && o.origin[i] == OriginAttacker
}

// PollutedCount returns the number of polluted ASes — the paper's core
// vulnerability measurement.
func (o *Outcome) PollutedCount() int {
	c := 0
	for i := 0; i < o.n; i++ {
		if o.Polluted(i) {
			c++
		}
	}
	return c
}

// PollutedNodes appends all polluted node indices to dst.
func (o *Outcome) PollutedNodes(dst []int) []int {
	for i := 0; i < o.n; i++ {
		if o.Polluted(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Clone returns a detached copy that survives further Solver runs.
func (o *Outcome) Clone() *Outcome {
	c := &Outcome{Target: o.Target, Attacker: o.Attacker, n: o.n, epoch: 1}
	c.stamp = make([]int32, o.n)
	c.class = make([]RouteClass, o.n)
	c.dist = make([]int16, o.n)
	c.nexthop = make([]int32, o.n)
	c.origin = make([]int8, o.n)
	for i := 0; i < o.n; i++ {
		if o.HasRoute(i) {
			c.stamp[i] = 1
			c.class[i] = o.class[i]
			c.dist[i] = o.dist[i]
			c.nexthop[i] = o.nexthop[i]
			c.origin[i] = o.origin[i]
		}
	}
	return c
}

// Path reconstructs node i's AS-path (as node indices, from i to the
// origin). Returns nil if i has no route.
func (o *Outcome) Path(i int) []int {
	if !o.HasRoute(i) {
		return nil
	}
	path := []int{i}
	cur := i
	for o.class[cur] != ClassOrigin {
		cur = int(o.nexthop[cur])
		path = append(path, cur)
		if len(path) > o.n {
			return nil // defensive: cycles cannot happen in converged state
		}
	}
	return path
}

// Solve computes the converged outcome of the attack. blocked, if non-nil,
// is the set of nodes performing route-origin validation: they reject (do
// not select or re-export) routes leading to the attacker. A nil blocked
// set means no deployed prevention.
func (s *Solver) Solve(at Attack, blocked *asn.IndexSet) (*Outcome, error) {
	n := s.pol.N()
	if at.Target < 0 || at.Target >= n || at.Attacker < 0 || at.Attacker >= n {
		return nil, fmt.Errorf("solve: node index out of range (target %d, attacker %d, n %d)", at.Target, at.Attacker, n)
	}
	if at.Target == at.Attacker {
		return nil, fmt.Errorf("solve: target and attacker are the same node %d", at.Target)
	}
	s.epoch++
	s.maxDist = 0

	// Seed the origins. In a sub-prefix hijack only the attacker's
	// more-specific announcement exists in this prefix's routing plane.
	if at.SubPrefix {
		s.assign(at.Attacker, ClassOrigin, 0, -1, OriginAttacker)
		s.frontier = append(s.frontier[:0], int32(at.Attacker))
	} else {
		s.assign(at.Target, ClassOrigin, 0, -1, OriginTarget)
		s.assign(at.Attacker, ClassOrigin, 0, -1, OriginAttacker)
		// Deterministic seed order: lower node index first.
		if at.Target < at.Attacker {
			s.frontier = append(s.frontier[:0], int32(at.Target), int32(at.Attacker))
		} else {
			s.frontier = append(s.frontier[:0], int32(at.Attacker), int32(at.Target))
		}
	}

	s.stageCustomer(blocked)
	s.stagePeer(blocked)
	s.stageProvider(blocked)

	return &Outcome{
		Target: at.Target, Attacker: at.Attacker,
		n: n, epoch: s.epoch,
		stamp: s.stamp, class: s.class, dist: s.dist, nexthop: s.nexthop, origin: s.origin,
	}, nil
}

func (s *Solver) assign(i int, c RouteClass, d int16, nh int32, org int8) {
	s.stamp[i] = s.epoch
	s.class[i] = c
	s.dist[i] = d
	s.nexthop[i] = nh
	s.origin[i] = org
	if int(d) > s.maxDist {
		s.maxDist = int(d)
	}
}

func (s *Solver) assigned(i int32) bool { return s.stamp[i] == s.epoch }

// rejects reports whether node i's origin validation drops routes to org.
func rejects(blocked *asn.IndexSet, i int32, org int8) bool {
	return org == OriginAttacker && blocked != nil && blocked.Contains(int(i))
}

// propose records a candidate (d, nh, org) for node i within the current
// BFS level, keeping the lowest next-hop on ties. All candidates within a
// level share the same distance.
func (s *Solver) propose(i int32, d int16, nh int32, org int8) {
	if s.candStamp[i] != s.epoch {
		s.candStamp[i] = s.epoch
		s.candNH[i] = nh
		s.candDist[i] = d
		s.candOrig[i] = org
		s.candList = append(s.candList, i)
		return
	}
	if s.pol.betterNH(nh, s.candNH[i]) {
		s.candNH[i] = nh
		s.candDist[i] = d
		s.candOrig[i] = org
	}
}

// stageCustomer floods customer-learned routes up provider links,
// level-synchronous so that equal-length ties resolve to the lowest
// next-hop exactly as the message engine does.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stageCustomer(blocked *asn.IndexSet) {
	d := int16(0)
	for len(s.frontier) > 0 {
		s.candList = s.candList[:0]
		for _, v := range s.frontier {
			org := s.origin[v]
			for _, p := range s.pol.Providers(int(v)) {
				if s.assigned(p) || rejects(blocked, p, org) {
					continue
				}
				s.propose(p, d+1, v, org)
			}
		}
		s.nextQ = s.nextQ[:0]
		for _, i := range s.candList {
			s.assign(int(i), ClassCustomer, s.candDist[i], s.candNH[i], s.candOrig[i])
			s.nextQ = append(s.nextQ, i)
		}
		// Invalidate candidate marks for the next level.
		s.epochBumpCands()
		s.frontier, s.nextQ = s.nextQ, s.frontier
		d++
	}
}

// epochBumpCands clears per-level candidate marks without touching route
// assignments: candidate stamps use the same epoch but are reset by
// re-stamping the processed entries.
func (s *Solver) epochBumpCands() {
	for _, i := range s.candList {
		s.candStamp[i] = 0
	}
	s.candList = s.candList[:0]
}

// stagePeer hands customer routes across single peer hops. Tier-1 nodes
// apply shortest-path-first import and may replace their customer route
// with a shorter peer route, in which case they stop offering a route to
// their peers (peer-learned routes are not exported to peers); processing
// tier-1s in ascending customer-route distance resolves that dependency in
// one pass.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stagePeer(blocked *asn.IndexSet) {
	pol := s.pol
	n := pol.N()

	// offers(v): v's best route is customer-class (or origination), so v
	// exports it to peers. Initially true for every routed node, because
	// stage 1 assigned only origin/customer classes; tier-1 SPF decisions
	// below may turn individual tier-1s off.
	s.tier1Buf = s.tier1Buf[:0]
	if pol.tier1SPF {
		for i := 0; i < n; i++ {
			if pol.tier1[i] {
				d := int16(1) << 14 // effectively infinite
				if s.assigned(int32(i)) {
					d = s.dist[i]
				}
				s.tier1Buf = append(s.tier1Buf, t1sel{int32(i), d})
			}
		}
		tier1s := s.tier1Buf
		// Ascending customer-route distance, node id breaking ties.
		for i := 1; i < len(tier1s); i++ {
			for j := i; j > 0 && (tier1s[j].d < tier1s[j-1].d ||
				tier1s[j].d == tier1s[j-1].d && tier1s[j].node < tier1s[j-1].node); j-- {
				tier1s[j], tier1s[j-1] = tier1s[j-1], tier1s[j]
			}
		}
		for _, t := range tier1s {
			w := t.node
			// Best peer offer among peers still offering customer routes.
			bestD, bestNH, bestOrg := int16(0), int32(-1), OriginNone
			for _, v := range pol.Peers(int(w)) {
				if !s.assigned(v) || !s.offersToPeers(v) {
					continue
				}
				org := s.origin[v]
				if rejects(blocked, w, org) {
					continue
				}
				cd := s.dist[v] + 1
				if bestNH == -1 || cd < bestD || cd == bestD && s.pol.betterNH(v, bestNH) {
					bestD, bestNH, bestOrg = cd, v, org
				}
			}
			if bestNH == -1 {
				continue
			}
			if !s.assigned(w) {
				s.assign(int(w), ClassPeer, bestD, bestNH, bestOrg)
				continue
			}
			if s.pol.better(int(w), ClassPeer, bestD, bestNH, s.class[w], s.dist[w], s.nexthop[w]) {
				s.assign(int(w), ClassPeer, bestD, bestNH, bestOrg)
			}
		}
	}

	// Everyone else: peer routes only fill gaps (customer class wins), and
	// they do not cascade, so one pass suffices. Collect candidates first
	// so freshly assigned peer routes cannot masquerade as donors.
	s.candList = s.candList[:0]
	for w := 0; w < n; w++ {
		if s.assigned(int32(w)) || pol.tier1SPF && pol.tier1[w] {
			continue
		}
		bestD, bestNH, bestOrg := int16(0), int32(-1), OriginNone
		for _, v := range pol.Peers(w) {
			if !s.assigned(v) || !s.offersToPeers(v) {
				continue
			}
			org := s.origin[v]
			if rejects(blocked, int32(w), org) {
				continue
			}
			cd := s.dist[v] + 1
			if bestNH == -1 || cd < bestD || cd == bestD && s.pol.betterNH(v, bestNH) {
				bestD, bestNH, bestOrg = cd, v, org
			}
		}
		if bestNH != -1 {
			s.candStamp[w] = s.epoch
			s.candNH[w] = bestNH
			s.candDist[w] = bestD
			s.candOrig[w] = bestOrg
			s.candList = append(s.candList, int32(w))
		}
	}
	for _, i := range s.candList {
		s.assign(int(i), ClassPeer, s.candDist[i], s.candNH[i], s.candOrig[i])
	}
	s.epochBumpCands()
}

// offersToPeers reports whether routed node v exports its best route to
// peers (true only for origin/customer-class selections).
func (s *Solver) offersToPeers(v int32) bool {
	return s.class[v] == ClassOrigin || s.class[v] == ClassCustomer
}

// stageProvider floods every selected route down customer links using
// distance buckets (sources start at different depths), assigning
// provider-class routes to still-unrouted nodes level by level.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stageProvider(blocked *asn.IndexSet) {
	n := s.pol.N()
	// Upper bound on final distances: current max + longest customer chain
	// is bounded by n; allocate lazily by growing.
	if cap(s.buckets) < s.maxDist+2 {
		s.buckets = make([][]int32, s.maxDist+2, 2*(s.maxDist+2)+8)
	} else {
		s.buckets = s.buckets[:s.maxDist+2]
		for i := range s.buckets {
			s.buckets[i] = s.buckets[i][:0]
		}
	}
	for i := 0; i < n; i++ {
		if s.assigned(int32(i)) {
			d := int(s.dist[i])
			s.growBuckets(d + 1)
			s.buckets[d] = append(s.buckets[d], int32(i))
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		if len(s.buckets[d]) == 0 {
			continue
		}
		s.candList = s.candList[:0]
		for _, v := range s.buckets[d] {
			org := s.origin[v]
			for _, c := range s.pol.Customers(int(v)) {
				if s.assigned(c) || rejects(blocked, c, org) {
					continue
				}
				s.propose(c, int16(d+1), v, org)
			}
		}
		if len(s.candList) == 0 {
			continue
		}
		s.growBuckets(d + 2)
		for _, i := range s.candList {
			s.assign(int(i), ClassProvider, s.candDist[i], s.candNH[i], s.candOrig[i])
			s.buckets[d+1] = append(s.buckets[d+1], i)
		}
		s.epochBumpCands()
	}
}

func (s *Solver) growBuckets(size int) {
	for len(s.buckets) < size {
		s.buckets = append(s.buckets, nil)
	}
}

// ReceivedAttackerRoute computes, for every node, whether at least one
// neighbor exported an attacker-origin route to it in the converged state —
// whether the node "heard" the hijack even if it did not select it. This is
// the alternative detection semantics studied as an ablation (the paper's
// detectors trigger on routes their probe AS selects and re-exports).
func ReceivedAttackerRoute(pol *Policy, o *Outcome) []bool {
	received := make([]bool, o.n)
	g := pol.Graph()
	for v := 0; v < o.n; v++ {
		if o.Origin(v) != OriginAttacker {
			continue
		}
		cls := o.Class(v)
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if int(nb) == int(o.NextHop(v)) {
				continue // split horizon: never announced back to the next hop
			}
			if exportsTo(cls, rels[k]) {
				received[nb] = true
			}
		}
	}
	return received
}
