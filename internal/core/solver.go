package core

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// Attack describes one hijack scenario: Attacker announces address space
// owned by Target, in the shape selected by Kind (the zero value is the
// paper's type-0 origin hijack). With SubPrefix set, the attacker
// announces a more-specific prefix, which wins longest-prefix-match
// forwarding everywhere it propagates — the legitimate covering
// announcement cannot compete, so only validation filters stop it.
type Attack struct {
	Target   int
	Attacker int
	// SubPrefix selects a sub-prefix hijack instead of an exact-prefix
	// one. Incompatible with KindRouteLeak (a leak re-announces the real
	// prefix).
	SubPrefix bool
	// Kind selects the attack scenario; the zero value, KindOrigin, is
	// the classic type-0 origin hijack.
	Kind AttackKind
}

// Solver computes the converged routing outcome of an attack in O(V+E)
// using the three-stage customer/peer/provider BFS. A Solver's buffers are
// reused across calls: the Outcome returned by Solve is only valid until
// the next Solve on the same Solver (Clone it to keep it). Solvers are not
// safe for concurrent use; create one per goroutine (they share the
// Policy).
type Solver struct {
	pol *Policy

	epoch   int32
	stamp   []int32 // stamp[i] == epoch ⇒ node i has a route this run
	class   []RouteClass
	dist    []int16
	nexthop []int32
	origin  []int8

	candStamp []int32 // per-level candidate marks
	candNH    []int32
	candDist  []int16
	candOrig  []int8

	frontier []int32
	candList []int32
	buckets  [][]int32
	tier1Buf []t1sel // stagePeer's SPF worklist, reused across Solve calls
	maxDist  int

	// base lazily holds a second solver for the defense-free baseline
	// solves route leaks need (the leaked route's real length), so the
	// main solve's buffers stay untouched.
	base *Solver
}

// t1sel is one tier-1 node with its customer-route distance, the sort key
// of stagePeer's shortest-path-first pass.
type t1sel struct {
	node int32
	d    int16
}

// NewSolver returns a Solver over the policy.
func NewSolver(pol *Policy) *Solver {
	n := pol.N()
	return &Solver{
		pol:       pol,
		stamp:     make([]int32, n),
		class:     make([]RouteClass, n),
		dist:      make([]int16, n),
		nexthop:   make([]int32, n),
		origin:    make([]int8, n),
		candStamp: make([]int32, n),
		candNH:    make([]int32, n),
		candDist:  make([]int16, n),
		candOrig:  make([]int8, n),
	}
}

// Outcome is a view of one converged routing state. It remains valid only
// until the owning Solver/Engine runs again; call Clone to detach it.
type Outcome struct {
	Target   int
	Attacker int

	n       int
	epoch   int32
	stamp   []int32
	class   []RouteClass
	dist    []int16
	nexthop []int32
	origin  []int8
}

// N returns the node count.
func (o *Outcome) N() int { return o.n }

// HasRoute reports whether node i selected any route.
func (o *Outcome) HasRoute(i int) bool { return o.stamp[i] == o.epoch }

// Origin returns which origin node i routes to (OriginTarget,
// OriginAttacker, or OriginNone).
func (o *Outcome) Origin(i int) int8 {
	if !o.HasRoute(i) {
		return OriginNone
	}
	return o.origin[i]
}

// Class returns the route class node i selected.
func (o *Outcome) Class(i int) RouteClass {
	if !o.HasRoute(i) {
		return ClassNone
	}
	return o.class[i]
}

// Dist returns node i's AS-path length to its selected origin (0 at the
// origin itself); -1 without a route.
func (o *Outcome) Dist(i int) int16 {
	if !o.HasRoute(i) {
		return -1
	}
	return o.dist[i]
}

// NextHop returns the neighbor node i forwards through, or -1 at an origin
// or unrouted node.
func (o *Outcome) NextHop(i int) int32 {
	if !o.HasRoute(i) || o.class[i] == ClassOrigin {
		return -1
	}
	return o.nexthop[i]
}

// Polluted reports whether node i selected a route to the attacker.
// Origin nodes themselves are never counted as polluted.
func (o *Outcome) Polluted(i int) bool {
	return i != o.Attacker && o.HasRoute(i) && o.origin[i] == OriginAttacker
}

// PollutedCount returns the number of polluted ASes — the paper's core
// vulnerability measurement.
func (o *Outcome) PollutedCount() int {
	c := 0
	for i := 0; i < o.n; i++ {
		if o.Polluted(i) {
			c++
		}
	}
	return c
}

// PollutedNodes appends all polluted node indices to dst.
func (o *Outcome) PollutedNodes(dst []int) []int {
	for i := 0; i < o.n; i++ {
		if o.Polluted(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Clone returns a detached copy that survives further Solver runs.
func (o *Outcome) Clone() *Outcome {
	c := &Outcome{Target: o.Target, Attacker: o.Attacker, n: o.n, epoch: 1}
	c.stamp = make([]int32, o.n)
	c.class = make([]RouteClass, o.n)
	c.dist = make([]int16, o.n)
	c.nexthop = make([]int32, o.n)
	c.origin = make([]int8, o.n)
	for i := 0; i < o.n; i++ {
		if o.HasRoute(i) {
			c.stamp[i] = 1
			c.class[i] = o.class[i]
			c.dist[i] = o.dist[i]
			c.nexthop[i] = o.nexthop[i]
			c.origin[i] = o.origin[i]
		}
	}
	return c
}

// Path reconstructs node i's AS-path (as node indices, from i to the
// origin). Returns nil if i has no route.
func (o *Outcome) Path(i int) []int {
	if !o.HasRoute(i) {
		return nil
	}
	path := []int{i}
	cur := i
	for o.class[cur] != ClassOrigin {
		cur = int(o.nexthop[cur])
		path = append(path, cur)
		if len(path) > o.n {
			return nil // defensive: cycles cannot happen in converged state
		}
	}
	return path
}

// Solve computes the converged outcome of the attack. blocked, if non-nil,
// is the set of nodes performing route-origin validation: they reject (do
// not select or re-export) routes leading to the attacker. A nil blocked
// set means no deployed prevention beyond whatever the attack kind itself
// implies. Solve is SolveDefense under the paper's original ROV-only
// defense shape.
func (s *Solver) Solve(at Attack, blocked *asn.IndexSet) (*Outcome, error) {
	return s.SolveDefense(at, Defense{Blocked: blocked})
}

// SolveDefense computes the converged outcome of the attack under the
// full defense model: ROV origin filtering, ASPA path validation and
// tier-1 Peerlock, each applied exactly where the attack kind makes it
// applicable (see the scenario layer in scenario.go).
func (s *Solver) SolveDefense(at Attack, def Defense) (*Outcome, error) {
	if err := validateAttack(s.pol, at); err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	sc, err := buildScenario(s.pol, at, def, func() (int16, bool) { return s.baselineDist(at) })
	if err != nil {
		return nil, err
	}
	return s.solveScenario(at, &sc), nil
}

// validateAttack rejects out-of-range and self-targeting attacks; shared
// by Solver and Engine.
func validateAttack(pol *Policy, at Attack) error {
	n := pol.N()
	if at.Target < 0 || at.Target >= n || at.Attacker < 0 || at.Attacker >= n {
		return fmt.Errorf("node index out of range (target %d, attacker %d, n %d)", at.Target, at.Attacker, n)
	}
	if at.Target == at.Attacker {
		return fmt.Errorf("target and attacker are the same node %d", at.Target)
	}
	return nil
}

// baselineDist solves the defense-free no-attack state (target announcing
// alone) on the lazily-built secondary solver and returns the attacker's
// converged route distance to the target, or ok=false if it has none.
func (s *Solver) baselineDist(at Attack) (int16, bool) {
	if s.base == nil {
		s.base = NewSolver(s.pol)
	}
	o := s.base.solveScenario(Attack{Target: at.Target, Attacker: at.Attacker}, &scenario{})
	if !o.HasRoute(at.Attacker) {
		return 0, false
	}
	return o.Dist(at.Attacker), true
}

// solveScenario runs the three stages under a resolved scenario. The
// attack must already be validated.
func (s *Solver) solveScenario(at Attack, sc *scenario) *Outcome {
	n := s.pol.N()
	s.epoch++
	s.maxDist = 0

	// Seed the origins. In a sub-prefix hijack only the attacker's
	// more-specific announcement exists in this prefix's routing plane.
	// The attacker's advertised path starts at the scenario's seed depth
	// (0 for an origin hijack, deeper for prepends and leaks).
	s.frontier = s.frontier[:0]
	if at.SubPrefix {
		s.assign(at.Attacker, ClassOrigin, sc.seedDist, -1, OriginAttacker)
		s.frontier = append(s.frontier, int32(at.Attacker))
	} else {
		s.assign(at.Target, ClassOrigin, 0, -1, OriginTarget)
		if sc.seedAttacker {
			s.assign(at.Attacker, ClassOrigin, sc.seedDist, -1, OriginAttacker)
		}
		// Deterministic seed order: lower node index first.
		switch {
		case !sc.seedAttacker:
			s.frontier = append(s.frontier, int32(at.Target))
		case at.Target < at.Attacker:
			s.frontier = append(s.frontier, int32(at.Target), int32(at.Attacker))
		default:
			s.frontier = append(s.frontier, int32(at.Attacker), int32(at.Target))
		}
	}

	s.stageCustomer(sc)
	s.stagePeer(sc)
	s.stageProvider(sc)

	return &Outcome{
		Target: at.Target, Attacker: at.Attacker,
		n: n, epoch: s.epoch,
		stamp: s.stamp, class: s.class, dist: s.dist, nexthop: s.nexthop, origin: s.origin,
	}
}

func (s *Solver) assign(i int, c RouteClass, d int16, nh int32, org int8) {
	s.stamp[i] = s.epoch
	s.class[i] = c
	s.dist[i] = d
	s.nexthop[i] = nh
	s.origin[i] = org
	if int(d) > s.maxDist {
		s.maxDist = int(d)
	}
}

func (s *Solver) assigned(i int32) bool { return s.stamp[i] == s.epoch }

// propose records a candidate (d, nh, org) for node i within the current
// BFS level, keeping the lowest next-hop on ties. All candidates within a
// level share the same distance.
func (s *Solver) propose(i int32, d int16, nh int32, org int8) {
	if s.candStamp[i] != s.epoch {
		s.candStamp[i] = s.epoch
		s.candNH[i] = nh
		s.candDist[i] = d
		s.candOrig[i] = org
		s.candList = append(s.candList, i)
		return
	}
	if s.pol.betterNH(nh, s.candNH[i]) {
		s.candNH[i] = nh
		s.candDist[i] = d
		s.candOrig[i] = org
	}
}

// stageCustomer floods customer-learned routes up provider links through
// distance buckets: seeds may start at different depths (a forged-origin
// prepend or a leaked route starts deeper than the victim's own
// origination), and processing buckets in ascending distance keeps the
// flood level-synchronous per distance, so equal-length ties resolve to
// the lowest next-hop exactly as the message engine does. With all seeds
// at distance 0 this degenerates to the original level-synchronous BFS.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stageCustomer(sc *scenario) {
	s.resetBuckets()
	for _, v := range s.frontier {
		d := int(s.dist[v])
		s.growBuckets(d + 1)
		s.buckets[d] = append(s.buckets[d], v)
	}
	for d := 0; d < len(s.buckets); d++ {
		if len(s.buckets[d]) == 0 {
			continue
		}
		s.candList = s.candList[:0]
		for _, v := range s.buckets[d] {
			org := s.origin[v]
			for _, p := range s.pol.Providers(int(v)) {
				if s.assigned(p) || sc.rejects(s.pol, p, org) {
					continue
				}
				s.propose(p, int16(d+1), v, org)
			}
		}
		if len(s.candList) == 0 {
			continue
		}
		s.growBuckets(d + 2)
		for _, i := range s.candList {
			s.assign(int(i), ClassCustomer, s.candDist[i], s.candNH[i], s.candOrig[i])
			s.buckets[d+1] = append(s.buckets[d+1], i)
		}
		// Invalidate candidate marks for the next level.
		s.epochBumpCands()
	}
}

// epochBumpCands clears per-level candidate marks without touching route
// assignments: candidate stamps use the same epoch but are reset by
// re-stamping the processed entries.
func (s *Solver) epochBumpCands() {
	for _, i := range s.candList {
		s.candStamp[i] = 0
	}
	s.candList = s.candList[:0]
}

// stagePeer hands customer routes across single peer hops. Tier-1 nodes
// apply shortest-path-first import and may replace their customer route
// with a shorter peer route, in which case they stop offering a route to
// their peers (peer-learned routes are not exported to peers); processing
// tier-1s in ascending customer-route distance resolves that dependency in
// one pass.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stagePeer(sc *scenario) {
	pol := s.pol
	n := pol.N()

	// offers(v): v's best route is customer-class (or origination), so v
	// exports it to peers. Initially true for every routed node, because
	// stage 1 assigned only origin/customer classes; tier-1 SPF decisions
	// below may turn individual tier-1s off.
	s.tier1Buf = s.tier1Buf[:0]
	if pol.tier1SPF {
		for i := 0; i < n; i++ {
			if pol.tier1[i] {
				d := int16(1) << 14 // effectively infinite
				if s.assigned(int32(i)) {
					d = s.dist[i]
				}
				s.tier1Buf = append(s.tier1Buf, t1sel{int32(i), d})
			}
		}
		tier1s := s.tier1Buf
		// Ascending customer-route distance, node id breaking ties.
		for i := 1; i < len(tier1s); i++ {
			for j := i; j > 0 && (tier1s[j].d < tier1s[j-1].d ||
				tier1s[j].d == tier1s[j-1].d && tier1s[j].node < tier1s[j-1].node); j-- {
				tier1s[j], tier1s[j-1] = tier1s[j-1], tier1s[j]
			}
		}
		for _, t := range tier1s {
			w := t.node
			// Best peer offer among peers still offering customer routes.
			bestD, bestNH, bestOrg := int16(0), int32(-1), OriginNone
			for _, v := range pol.Peers(int(w)) {
				if !s.assigned(v) || !s.offersToPeers(v) {
					continue
				}
				org := s.origin[v]
				if sc.rejects(s.pol, w, org) {
					continue
				}
				cd := s.dist[v] + 1
				if bestNH == -1 || cd < bestD || cd == bestD && s.pol.betterNH(v, bestNH) {
					bestD, bestNH, bestOrg = cd, v, org
				}
			}
			if bestNH == -1 {
				continue
			}
			if !s.assigned(w) {
				s.assign(int(w), ClassPeer, bestD, bestNH, bestOrg)
				continue
			}
			if s.pol.better(int(w), ClassPeer, bestD, bestNH, s.class[w], s.dist[w], s.nexthop[w]) {
				s.assign(int(w), ClassPeer, bestD, bestNH, bestOrg)
			}
		}
	}

	// Everyone else: peer routes only fill gaps (customer class wins), and
	// they do not cascade, so one pass suffices. Collect candidates first
	// so freshly assigned peer routes cannot masquerade as donors.
	s.candList = s.candList[:0]
	for w := 0; w < n; w++ {
		if s.assigned(int32(w)) || pol.tier1SPF && pol.tier1[w] {
			continue
		}
		bestD, bestNH, bestOrg := int16(0), int32(-1), OriginNone
		for _, v := range pol.Peers(w) {
			if !s.assigned(v) || !s.offersToPeers(v) {
				continue
			}
			org := s.origin[v]
			if sc.rejects(s.pol, int32(w), org) {
				continue
			}
			cd := s.dist[v] + 1
			if bestNH == -1 || cd < bestD || cd == bestD && s.pol.betterNH(v, bestNH) {
				bestD, bestNH, bestOrg = cd, v, org
			}
		}
		if bestNH != -1 {
			s.candStamp[w] = s.epoch
			s.candNH[w] = bestNH
			s.candDist[w] = bestD
			s.candOrig[w] = bestOrg
			s.candList = append(s.candList, int32(w))
		}
	}
	for _, i := range s.candList {
		s.assign(int(i), ClassPeer, s.candDist[i], s.candNH[i], s.candOrig[i])
	}
	s.epochBumpCands()
}

// offersToPeers reports whether routed node v exports its best route to
// peers (true only for origin/customer-class selections).
func (s *Solver) offersToPeers(v int32) bool {
	return s.class[v] == ClassOrigin || s.class[v] == ClassCustomer
}

// stageProvider floods every selected route down customer links using
// distance buckets (sources start at different depths), assigning
// provider-class routes to still-unrouted nodes level by level.
//
//bgplint:hotpath runs once per (target, attacker, policy) cell of a sweep
func (s *Solver) stageProvider(sc *scenario) {
	n := s.pol.N()
	s.resetBuckets()
	for i := 0; i < n; i++ {
		if s.assigned(int32(i)) {
			d := int(s.dist[i])
			s.growBuckets(d + 1)
			s.buckets[d] = append(s.buckets[d], int32(i))
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		if len(s.buckets[d]) == 0 {
			continue
		}
		s.candList = s.candList[:0]
		for _, v := range s.buckets[d] {
			org := s.origin[v]
			for _, c := range s.pol.Customers(int(v)) {
				if s.assigned(c) || sc.rejects(s.pol, c, org) {
					continue
				}
				s.propose(c, int16(d+1), v, org)
			}
		}
		if len(s.candList) == 0 {
			continue
		}
		s.growBuckets(d + 2)
		for _, i := range s.candList {
			s.assign(int(i), ClassProvider, s.candDist[i], s.candNH[i], s.candOrig[i])
			s.buckets[d+1] = append(s.buckets[d+1], i)
		}
		s.epochBumpCands()
	}
}

func (s *Solver) growBuckets(size int) {
	for len(s.buckets) < size {
		s.buckets = append(s.buckets, nil)
	}
}

// resetBuckets readies the shared distance-bucket array for a stage:
// sized to the current max distance plus headroom, every bucket emptied.
// Upper bound on final distances: current max + longest chain is bounded
// by n; allocation grows lazily via growBuckets.
func (s *Solver) resetBuckets() {
	if cap(s.buckets) < s.maxDist+2 {
		s.buckets = make([][]int32, s.maxDist+2, 2*(s.maxDist+2)+8)
	} else {
		s.buckets = s.buckets[:s.maxDist+2]
		for i := range s.buckets {
			s.buckets[i] = s.buckets[i][:0]
		}
	}
}

// ReceivedAttackerRoute computes, for every node, whether at least one
// neighbor exported an attacker-origin route to it in the converged state —
// whether the node "heard" the hijack even if it did not select it. This is
// the alternative detection semantics studied as an ablation (the paper's
// detectors trigger on routes their probe AS selects and re-exports).
func ReceivedAttackerRoute(pol *Policy, o OutcomeView) []bool {
	n := o.N()
	received := make([]bool, n)
	g := pol.Graph()
	for v := 0; v < n; v++ {
		if o.Origin(v) != OriginAttacker {
			continue
		}
		cls := o.Class(v)
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if int(nb) == int(o.NextHop(v)) {
				continue // split horizon: never announced back to the next hop
			}
			if exportsTo(cls, rels[k]) {
				received[nb] = true
			}
		}
	}
	return received
}
