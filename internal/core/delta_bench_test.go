package core

import (
	"sort"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// benchTopDegreeSet returns the k highest-degree nodes, the paper's
// "deploy at the top ISPs" incremental-deployment set.
func benchTopDegreeSet(pol *Policy, k int) *asn.IndexSet {
	n := pol.N()
	type dn struct{ d, i int }
	deg := make([]dn, n)
	for i := 0; i < n; i++ {
		deg[i] = dn{len(pol.Customers(i)) + len(pol.Providers(i)) + len(pol.Peers(i)), i}
	}
	sort.Slice(deg, func(a, b int) bool {
		if deg[a].d != deg[b].d {
			return deg[a].d > deg[b].d
		}
		return deg[a].i < deg[b].i
	})
	set := asn.NewIndexSet(n)
	for i := 0; i < k && i < n; i++ {
		set.Add(deg[i].i)
	}
	return set
}

// benchDeltaSetup builds the benchmark topology, a snapshot for a fixed
// target, a rotation of attackers, and the top-ISP ROV deployment that
// shapes hijackd's dominant query mix: deployment/what-if queries are
// always evaluated under a candidate defense, which confines the
// attacker's reach and keeps the delta region small.
func benchDeltaSetup(b testing.TB) (*Policy, *Snapshot, []int, Defense) {
	b.Helper()
	pol := deltaTestPolicy(b, 2000, 42)
	n := pol.N()
	target := n / 7
	snap, err := BuildSnapshot(pol, target)
	if err != nil {
		b.Fatal(err)
	}
	attackers := make([]int, 0, 64)
	for i := 0; len(attackers) < 64; i += 31 {
		a := i % n
		if a != target {
			attackers = append(attackers, a)
		}
	}
	return pol, snap, attackers, Defense{Blocked: benchTopDegreeSet(pol, 20)}
}

// BenchmarkDeltaSolve measures one what-if query on the warm path: a
// cached baseline snapshot plus delta repair, the per-query work a
// hijackd worker does for a deployment query (defense at the top ISPs).
func BenchmarkDeltaSolve(b *testing.B) {
	pol, snap, attackers, def := benchDeltaSetup(b)
	ds := NewDeltaSolver(pol)
	target := snap.Target()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := ds.SolveDelta(snap, Attack{Target: target, Attacker: attackers[i%len(attackers)]}, def)
		if err != nil {
			b.Fatal(err)
		}
		_ = o.PollutedCount()
	}
	st := ds.Stats()
	if st.FullFallbacks > 0 {
		b.Fatalf("benchmark fell back to full solves: %+v", st)
	}
}

// BenchmarkDeltaSolveUndefended is the defense-free vulnerability query:
// an unchecked origin hijack rewrites most of the graph, so the delta
// region is near-global and the warm path saves little over a full
// solve. Reported for transparency next to the defended number.
func BenchmarkDeltaSolveUndefended(b *testing.B) {
	pol, snap, attackers, _ := benchDeltaSetup(b)
	ds := NewDeltaSolver(pol)
	target := snap.Target()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := ds.SolveDelta(snap, Attack{Target: target, Attacker: attackers[i%len(attackers)]}, Defense{})
		if err != nil {
			b.Fatal(err)
		}
		_ = o.PollutedCount()
	}
	st := ds.Stats()
	if st.FullFallbacks > 0 {
		b.Fatalf("benchmark fell back to full solves: %+v", st)
	}
}

// BenchmarkFullSolveCold measures the same defended queries answered the
// way the batch tools do on a cache miss: a fresh solver and a
// from-scratch three-stage solve per query.
func BenchmarkFullSolveCold(b *testing.B) {
	pol, snap, attackers, def := benchDeltaSetup(b)
	target := snap.Target()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(pol)
		o, err := s.SolveDefense(Attack{Target: target, Attacker: attackers[i%len(attackers)]}, def)
		if err != nil {
			b.Fatal(err)
		}
		_ = o.PollutedCount()
	}
}
