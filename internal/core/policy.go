// Package core implements the paper's BGP origin-hijack simulator: the
// routing policy model (Gao–Rexford LOCAL_PREF classes, valley-free export,
// tier-1 shortest-path override), a fast three-stage BFS solver that
// computes the converged routing state of a one- or two-origin announcement
// in O(V+E), and a faithful generation-stepped message-passing engine with
// Adj-RIB-In state and withdrawals that reproduces the paper's simulator
// behaviour tick by tick. The two are property-tested to produce identical
// outcomes; sweeps use the solver, propagation traces use the engine.
package core

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/topology"
)

// RouteClass ranks how a route was learned. Smaller is more preferred
// under standard LOCAL_PREF policy (customer > peer > provider); a node's
// own origination beats everything.
type RouteClass int8

const (
	// ClassNone means no route.
	ClassNone RouteClass = 0
	// ClassOrigin is a self-originated route.
	ClassOrigin RouteClass = 1
	// ClassCustomer is a route learned from a customer.
	ClassCustomer RouteClass = 2
	// ClassPeer is a route learned from a settlement-free peer.
	ClassPeer RouteClass = 3
	// ClassProvider is a route learned from a transit provider.
	ClassProvider RouteClass = 4
)

// String returns the class name.
func (c RouteClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassOrigin:
		return "origin"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return fmt.Sprintf("RouteClass(%d)", int8(c))
	}
}

// Origin identifies which announcement a route leads to in a hijack
// scenario.
const (
	// OriginNone marks nodes with no route.
	OriginNone int8 = -1
	// OriginTarget marks routes leading to the legitimate origin.
	OriginTarget int8 = 0
	// OriginAttacker marks routes leading to the hijacker: pollution.
	OriginAttacker int8 = 1
)

// Policy is the immutable routing-policy context for a topology: per-class
// adjacency in CSR form plus the tier-1 set. Build once, share across any
// number of Solvers and Engines.
type Policy struct {
	g     *topology.Graph
	n     int
	tier1 []bool

	// Per-relationship CSR adjacency. providers[i] = nodes that provide
	// transit to i, etc.
	provOff, custOff, peerOff []int32
	provAdj, custAdj, peerAdj []int32

	// tier1SPF enables the paper's tier-1 policy: "Tier-1 routers always
	// accept shortest path" regardless of neighbor class.
	tier1SPF bool
	// tieHigh flips the deterministic next-hop tie-break (see
	// WithPreferHighNextHop).
	tieHigh bool
}

// PolicyOption customizes Policy construction.
type PolicyOption func(*policyOptions)

type policyOptions struct {
	tier1SPF bool
	tieHigh  bool
}

// WithTier1ShortestPath toggles the tier-1 shortest-path-first import
// override (default on, as in the paper; the paper's Section VI analysis of
// undetected attack AS6450→AS7314 hinges on it).
func WithTier1ShortestPath(on bool) PolicyOption {
	return func(o *policyOptions) { o.tier1SPF = on }
}

// WithPreferHighNextHop flips the final tie-break to prefer the higher
// next-hop ASN. Real routers break ties by arbitrary local criteria; this
// knob produces a plausible "other internet" whose RIBs diverge from the
// default policy's exactly where ties occur — the perturbation used by the
// RouteViews-style validation study.
func WithPreferHighNextHop(on bool) PolicyOption {
	return func(o *policyOptions) { o.tieHigh = on }
}

// NewPolicy builds the policy context. tier1 lists the node indices with
// tier-1 import behaviour. The graph must be sibling-free: contract sibling
// groups first (topology.ContractSiblings); a sibling link is an error.
func NewPolicy(g *topology.Graph, tier1 []int, opts ...PolicyOption) (*Policy, error) {
	o := policyOptions{tier1SPF: true}
	for _, opt := range opts {
		opt(&o)
	}
	n := g.N()
	p := &Policy{g: g, n: n, tier1: make([]bool, n), tier1SPF: o.tier1SPF, tieHigh: o.tieHigh}
	for _, t := range tier1 {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("policy: tier-1 index %d out of range", t)
		}
		p.tier1[t] = true
	}

	var nProv, nCust, nPeer int32
	for i := 0; i < n; i++ {
		_, rels := g.Neighbors(i)
		for _, r := range rels {
			switch r {
			case topology.RelProvider:
				nProv++
			case topology.RelCustomer:
				nCust++
			case topology.RelPeer:
				nPeer++
			case topology.RelSibling:
				return nil, fmt.Errorf("policy: graph has sibling links; contract siblings first (node %v)", g.ASN(i))
			}
		}
	}
	p.provOff = make([]int32, n+1)
	p.custOff = make([]int32, n+1)
	p.peerOff = make([]int32, n+1)
	p.provAdj = make([]int32, nProv)
	p.custAdj = make([]int32, nCust)
	p.peerAdj = make([]int32, nPeer)
	var cp, cc, cr int32
	for i := 0; i < n; i++ {
		p.provOff[i], p.custOff[i], p.peerOff[i] = cp, cc, cr
		nbrs, rels := g.Neighbors(i)
		for k, nb := range nbrs {
			switch rels[k] {
			case topology.RelProvider:
				p.provAdj[cp] = nb
				cp++
			case topology.RelCustomer:
				p.custAdj[cc] = nb
				cc++
			case topology.RelPeer:
				p.peerAdj[cr] = nb
				cr++
			}
		}
	}
	p.provOff[n], p.custOff[n], p.peerOff[n] = cp, cc, cr
	return p, nil
}

// Graph returns the topology the policy was built over.
func (p *Policy) Graph() *topology.Graph { return p.g }

// N returns the node count.
func (p *Policy) N() int { return p.n }

// IsTier1 reports whether node i uses tier-1 import policy.
func (p *Policy) IsTier1(i int) bool { return p.tier1[i] }

// Tier1ShortestPath reports whether the tier-1 SPF override is enabled.
func (p *Policy) Tier1ShortestPath() bool { return p.tier1SPF }

// PreferHighNextHop reports whether the final next-hop tie-break is
// flipped (WithPreferHighNextHop).
func (p *Policy) PreferHighNextHop() bool { return p.tieHigh }

// Providers returns node i's providers.
func (p *Policy) Providers(i int) []int32 { return p.provAdj[p.provOff[i]:p.provOff[i+1]] }

// Customers returns node i's customers.
func (p *Policy) Customers(i int) []int32 { return p.custAdj[p.custOff[i]:p.custOff[i+1]] }

// Peers returns node i's peers.
func (p *Policy) Peers(i int) []int32 { return p.peerAdj[p.peerOff[i]:p.peerOff[i+1]] }

// better reports whether route a=(classA, distA, nhA) is preferred over
// b at node v. The order is total (next-hop node index — equivalently ASN,
// since indices ascend with ASN — breaks ties), which makes converged
// states unique and the two engines comparable.
func (p *Policy) better(v int, classA RouteClass, distA int16, nhA int32, classB RouteClass, distB int16, nhB int32) bool {
	if classB == ClassNone {
		return classA != ClassNone
	}
	if classA == ClassNone {
		return false
	}
	if p.tier1SPF && p.tier1[v] {
		// Tier-1: shortest path first, then class, then next-hop.
		if distA != distB {
			return distA < distB
		}
		if classA != classB {
			return classA < classB
		}
		return p.betterNH(nhA, nhB)
	}
	if classA != classB {
		return classA < classB
	}
	if distA != distB {
		return distA < distB
	}
	return p.betterNH(nhA, nhB)
}

// betterNH is the final deterministic tie-break between equally preferred
// routes: lowest next-hop node index (≡ lowest ASN) by default.
func (p *Policy) betterNH(a, b int32) bool {
	if p.tieHigh {
		return a > b
	}
	return a < b
}

// exportsTo reports whether a node whose best route has the given class
// announces that route to a neighbor with relationship rel (rel is the
// neighbor's role from the node's perspective). This is the valley-free
// export rule:
//
//	origin/customer routes → everyone
//	peer/provider routes   → customers only
func exportsTo(best RouteClass, rel topology.Rel) bool {
	switch best {
	case ClassOrigin, ClassCustomer:
		return true
	case ClassPeer, ClassProvider:
		return rel == topology.RelCustomer
	default:
		return false
	}
}
