package core

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func mustSolve(t *testing.T, s *Solver, at Attack, blocked *asn.IndexSet) *Outcome {
	t.Helper()
	o, err := s.Solve(at, blocked)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSolveValidation(t *testing.T) {
	pol, _ := buildPolicy(t, diamond)
	s := NewSolver(pol)
	if _, err := s.Solve(Attack{Target: 0, Attacker: 0}, nil); err == nil {
		t.Error("target==attacker accepted")
	}
	if _, err := s.Solve(Attack{Target: -1, Attacker: 0}, nil); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := s.Solve(Attack{Target: 0, Attacker: 99}, nil); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestSolveNoAttackRouting checks single-origin route selection against
// hand-derived valley-free expectations on the diamond topology. We model
// "no attack" as a sub-prefix announcement from the legitimate origin only.
func TestSolveNoAttackRouting(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	origin := nodeIx(t, g, 20) // stub a under A(10)
	// Trick: SubPrefix announces only the Attacker node; use it to get
	// single-origin routing state with "attacker" = the legitimate origin.
	o := mustSolve(t, s, Attack{Target: nodeIx(t, g, 22), Attacker: origin, SubPrefix: true}, nil)

	want := map[asn.ASN]struct {
		class RouteClass
		dist  int16
	}{
		20: {ClassOrigin, 0},
		10: {ClassCustomer, 1}, // A learns from customer a
		1:  {ClassCustomer, 2}, // T1a from customer A
		11: {ClassPeer, 2},     // B prefers peer A over provider T1a
		2:  {ClassPeer, 3},     // T1b: peer route from T1a (tier-1 SPF: dist 3 beats nothing else; no customer route)
		21: {ClassProvider, 3}, // b from provider B
		12: {ClassProvider, 4}, // C from provider T1b
		22: {ClassProvider, 5},
	}
	for a, w := range want {
		i := nodeIx(t, g, a)
		if o.Class(i) != w.class || o.Dist(i) != w.dist {
			t.Errorf("AS%v: class=%v dist=%d, want class=%v dist=%d", a, o.Class(i), o.Dist(i), w.class, w.dist)
		}
	}
	// Everyone routes to the single origin.
	for i := 0; i < g.N(); i++ {
		if o.Origin(i) != OriginAttacker {
			t.Errorf("node %v has origin %d, want attacker(=origin)", g.ASN(i), o.Origin(i))
		}
	}
}

// TestSolveHijackDiamond hand-checks a two-origin contest.
func TestSolveHijackDiamond(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	target := nodeIx(t, g, 20)   // stub under A
	attacker := nodeIx(t, g, 22) // stub under C (two tiers away)
	o := mustSolve(t, s, Attack{Target: target, Attacker: attacker}, nil)

	// A and T1a learn the target's route via customers; C and T1b learn the
	// attacker's the same way. B hears target from peer A.
	wantOrigin := map[asn.ASN]int8{
		20: OriginTarget, 10: OriginTarget, 1: OriginTarget, 11: OriginTarget,
		21: OriginTarget, // b under B: provider route to target
		22: OriginAttacker, 12: OriginAttacker, 2: OriginAttacker,
	}
	for a, w := range wantOrigin {
		i := nodeIx(t, g, a)
		if got := o.Origin(i); got != w {
			t.Errorf("AS%v routes to origin %d, want %d", a, got, w)
		}
	}
	if got := o.PollutedCount(); got != 2 {
		t.Errorf("polluted = %d, want 2 (C and T1b)", got)
	}
	if o.Polluted(attacker) {
		t.Error("attacker itself must not count as polluted")
	}
	if o.Polluted(target) {
		t.Error("target cannot be polluted in an origin hijack")
	}
}

// TestSolveBlocking verifies that origin validation stops propagation
// through (and selection at) deploying ASes.
func TestSolveBlocking(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	target := nodeIx(t, g, 20)
	attacker := nodeIx(t, g, 22)

	// Block at C(12): the attacker's only provider filters it out, so the
	// bogus announcement never leaves the attacker.
	blocked := asn.NewIndexSet(g.N())
	blocked.Add(nodeIx(t, g, 12))
	o := mustSolve(t, s, Attack{Target: target, Attacker: attacker}, blocked)
	if got := o.PollutedCount(); got != 0 {
		t.Errorf("polluted = %d, want 0 with attacker's provider filtering", got)
	}
	// The filtering AS must still route to the legitimate target.
	if got := o.Origin(nodeIx(t, g, 12)); got != OriginTarget {
		t.Errorf("filtering AS routes to %d, want target", got)
	}

	// Blocking only T1b(2) leaves C polluted but protects the tier-1.
	blocked2 := asn.NewIndexSet(g.N())
	blocked2.Add(nodeIx(t, g, 2))
	o2 := mustSolve(t, s, Attack{Target: target, Attacker: attacker}, blocked2)
	if o2.Polluted(nodeIx(t, g, 2)) {
		t.Error("blocking AS selected the bogus route")
	}
	if !o2.Polluted(nodeIx(t, g, 12)) {
		t.Error("C should still be polluted (learns direct from customer)")
	}
	if o2.PollutedCount() != 1 {
		t.Errorf("polluted = %d, want 1", o2.PollutedCount())
	}
}

// TestSolveSubPrefix verifies sub-prefix semantics: the attacker's
// more-specific wins everywhere except behind filters.
func TestSolveSubPrefix(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	target := nodeIx(t, g, 20)
	attacker := nodeIx(t, g, 22)
	o := mustSolve(t, s, Attack{Target: target, Attacker: attacker, SubPrefix: true}, nil)
	// Everyone except the attacker is polluted — including the target.
	if got := o.PollutedCount(); got != g.N()-1 {
		t.Errorf("subprefix polluted = %d, want %d", got, g.N()-1)
	}

	blocked := asn.NewIndexSet(g.N())
	blocked.Add(nodeIx(t, g, 12))
	o2 := mustSolve(t, s, Attack{Target: target, Attacker: attacker, SubPrefix: true}, blocked)
	// C blocks; nothing above C hears the sub-prefix, and with no covering
	// route in this plane those ASes simply have no route for it.
	if o2.Polluted(nodeIx(t, g, 12)) {
		t.Error("filtering AS polluted by subprefix")
	}
	if o2.HasRoute(nodeIx(t, g, 2)) {
		t.Error("T1b should have no route to the filtered sub-prefix")
	}
	if got := o2.PollutedCount(); got != 0 {
		t.Errorf("subprefix polluted with filter = %d, want 0", got)
	}
}

// TestTier1ShortestPathOverride reproduces the paper's AS6450→AS7314
// anatomy: a multi-homed depth-1 target keeps length-2 paths at every
// tier-1 (shortest-path policy), so a depth-2 attacker cannot displace
// them there.
func TestTier1ShortestPathOverride(t *testing.T) {
	links := []link{
		// Three tier-1s in a clique.
		{1, 2, topology.RelPeer}, {1, 3, topology.RelPeer}, {2, 3, topology.RelPeer},
		// Target 7314: multi-homed to tier-1 AS1 and mid provider 12083.
		{1, 7314, topology.RelCustomer},
		{12083, 7314, topology.RelCustomer},
		// 12083 is a customer of tier-1 2.
		{2, 12083, topology.RelCustomer},
		// Attacker 6450 at depth 3: under 6939, under 4436, under tier-1 3 —
		// so its announcement reaches every tier-1 with path length ≥ 3.
		{3, 4436, topology.RelCustomer},
		{4436, 6939, topology.RelCustomer},
		{6939, 6450, topology.RelCustomer},
		// 6939 peers widely (here: with 12083), which is what lets the
		// attack spread below the tier-1s.
		{6939, 12083, topology.RelPeer},
		// A stub under 6939 to observe pollution.
		{6939, 555, topology.RelCustomer},
	}
	pol, g := buildPolicy(t, links)
	s := NewSolver(pol)
	target := nodeIx(t, g, 7314)
	attacker := nodeIx(t, g, 6450)
	o := mustSolve(t, s, Attack{Target: target, Attacker: attacker}, nil)

	// Every tier-1 keeps a length-≤2 path to the legitimate target; the
	// attacker's announcement arrives with length ≥ 2 via customers but
	// loses the shortest-path (then class, then next-hop) comparison.
	for _, a := range []asn.ASN{1, 2, 3} {
		i := nodeIx(t, g, a)
		if o.Origin(i) != OriginTarget {
			t.Errorf("tier-1 AS%v polluted; want clean under SPF policy", a)
		}
		if o.Dist(i) > 2 {
			t.Errorf("tier-1 AS%v dist = %d, want ≤ 2", a, o.Dist(i))
		}
	}
	// Meanwhile the attack propagates below: 6939 prefers its customer
	// route to the attacker, and its stub and peer hear it.
	if !o.Polluted(nodeIx(t, g, 6939)) {
		t.Error("attacker's provider should be polluted (customer route)")
	}
	if !o.Polluted(nodeIx(t, g, 555)) {
		t.Error("stub under attacker's provider should be polluted")
	}

	// Ablation: with tier-1 SPF off, tier-1 AS3 prefers the (longer)
	// customer route to the attacker — the hijack now reaches a tier-1.
	polOff, _ := buildPolicy(t, links, WithTier1ShortestPath(false))
	// buildPolicy rebuilds the graph; re-resolve indices via ASNs.
	gOff := polOff.Graph()
	iOf := func(a asn.ASN) int { i, _ := gOff.Index(a); return i }
	sOff := NewSolver(polOff)
	oOff := mustSolve(t, sOff, Attack{Target: iOf(7314), Attacker: iOf(6450)}, nil)
	if oOff.Origin(iOf(3)) != OriginAttacker {
		t.Error("with SPF disabled, AS3 should prefer its customer route to the attacker")
	}
}

// TestPathValleyFree reconstructs every selected path and checks the
// valley-free shape: zero or more customer→provider steps, at most one
// peer step, then zero or more provider→customer steps.
func TestPathValleyFree(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultParams(600))
	c := topology.Classify(g, topology.ClassifyOptions{})
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	cc := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := NewPolicy(cg, cc.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	s := NewSolver(pol)
	o := mustSolve(t, s, Attack{Target: 0, Attacker: cg.N() - 1}, nil)

	for i := 0; i < cg.N(); i++ {
		path := o.Path(i)
		if path == nil {
			continue
		}
		if path[0] != i {
			t.Fatalf("path must start at the node itself")
		}
		// Classify each hop by relationship: hop from path[k] to path[k+1].
		// Valley-free: phase can only move forward through up → peer → down.
		const (
			phaseUp = iota
			phasePeer
			phaseDown
		)
		phase := phaseUp
		for k := 0; k+1 < len(path); k++ {
			rel := cg.Rel(path[k], path[k+1])
			switch rel {
			case topology.RelProvider: // moving up
				if phase != phaseUp {
					t.Fatalf("node %d path %v: up-step after phase %d", i, path, phase)
				}
			case topology.RelPeer:
				if phase == phaseDown {
					t.Fatalf("node %d path %v: peer step after down phase", i, path)
				}
				phase = phaseDown // at most one peer edge, then descend
			case topology.RelCustomer:
				phase = phaseDown
			default:
				t.Fatalf("node %d path %v: nonadjacent hop", i, path)
			}
		}
	}
}

func TestOutcomeClone(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	o := mustSolve(t, s, Attack{Target: nodeIx(t, g, 20), Attacker: nodeIx(t, g, 22)}, nil)
	saved := o.Clone()
	before := o.PollutedCount()
	// Run a different attack; the clone must not change.
	mustSolve(t, s, Attack{Target: nodeIx(t, g, 22), Attacker: nodeIx(t, g, 20)}, nil)
	if saved.PollutedCount() != before {
		t.Error("clone changed after solver reuse")
	}
	if saved.Target != nodeIx(t, g, 20) {
		t.Error("clone lost attack identity")
	}
}

func TestReceivedAttackerRoute(t *testing.T) {
	pol, g := buildPolicy(t, diamond)
	s := NewSolver(pol)
	target := nodeIx(t, g, 20)
	attacker := nodeIx(t, g, 22)
	o := mustSolve(t, s, Attack{Target: target, Attacker: attacker}, nil)
	rec := ReceivedAttackerRoute(pol, o)
	// T1b selects the attacker route (customer, via C) and exports it to
	// its peer T1a — T1a hears the hijack without selecting it.
	if !rec[nodeIx(t, g, 1)] {
		t.Error("T1a should have received the bogus route from its peer")
	}
	// Stub b under B never hears it: B selects the target route.
	if rec[nodeIx(t, g, 21)] {
		t.Error("stub b should not have received the bogus route")
	}
	// Split horizon: C's next hop is the attacker; the attacker must not
	// be marked as receiving its own announcement back.
	if rec[attacker] {
		t.Error("attacker marked as receiving its own route")
	}
}
