// The scenario layer: attack kinds beyond the paper's type-0 origin
// hijack, and defenses beyond the single origin-filter set. An Attack's
// Kind selects how the bogus announcement is constructed (forged origins
// prepend the victim, route leaks re-announce a real route); a Defense
// carries which validation mechanisms are deployed where. Both resolve —
// once per solve — into a static per-node rejection predicate plus an
// attacker seed distance, which is the entire interface the three-stage
// Solver and the generation-stepped Engine consume. Because the two
// engines share the exact same resolved scenario, their bit-identical
// equivalence (property-tested) extends to every kind × defense
// combination by construction.
package core

import (
	"fmt"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// AttackKind selects the attack scenario an Attack describes. The zero
// value is the paper's original exact/sub-prefix type-0 origin hijack, so
// existing Attack literals keep their meaning.
type AttackKind int8

const (
	// KindOrigin is the paper's type-0 hijack: the attacker originates the
	// victim's address space itself. Origin validation (the ROV blocked
	// set) catches it; path validation has nothing to check — the forged
	// announcement contains no forged adjacency.
	KindOrigin AttackKind = 0
	// KindForgedOrigin is a type-1 forged-origin hijack: the attacker
	// prepends the victim, announcing the path {attacker, victim}. The
	// origin looks legitimate, so ROV is blind to it; ASPA-style provider
	// authorization catches it unless the attacker really is one of the
	// victim's providers (then the forged adjacency is plausible and no
	// path validator can tell).
	KindForgedOrigin AttackKind = 1
	// KindRouteLeak is a valley-violating leak: the attacker re-announces
	// its legitimate route to the victim to all neighbors, provider and
	// peer included. The path is real and the origin is the victim, so ROV
	// is blind; ASPA validators see the valley, and Peerlock-deploying
	// tier-1s refuse the leaked route.
	KindRouteLeak AttackKind = 2
)

// String returns the CLI name of the kind.
func (k AttackKind) String() string {
	switch k {
	case KindOrigin:
		return "origin"
	case KindForgedOrigin:
		return "forged-origin"
	case KindRouteLeak:
		return "route-leak"
	default:
		return fmt.Sprintf("AttackKind(%d)", int8(k))
	}
}

// ParseAttackKind parses a CLI scenario name; "" means origin.
func ParseAttackKind(s string) (AttackKind, error) {
	switch s {
	case "", "origin":
		return KindOrigin, nil
	case "forged-origin", "forged":
		return KindForgedOrigin, nil
	case "route-leak", "leak":
		return KindRouteLeak, nil
	default:
		return 0, fmt.Errorf("unknown attack scenario %q (want origin, forged-origin or route-leak)", s)
	}
}

// Kinds lists every attack kind in canonical order.
func Kinds() []AttackKind { return []AttackKind{KindOrigin, KindForgedOrigin, KindRouteLeak} }

// Defense describes the deployed prevention mechanisms a solve runs
// under. The zero value means nothing is deployed. Each mechanism only
// ever filters bogus (attacker-origin) routes; legitimate routing is
// untouched, which keeps the model convergence-safe.
type Defense struct {
	// Blocked is the ROV deployment: nodes that validate route origins
	// and drop announcements whose origin is forged (KindOrigin only —
	// the other kinds present a legitimate-looking origin).
	Blocked *asn.IndexSet
	// ASPA is the path-validation deployment: nodes that check provider
	// authorization along the path. They drop forged-origin announcements
	// whose forged adjacency contradicts the victim's registered
	// providers, and leaked routes (the valley is visible in the path).
	// All ASes are assumed to have registered truthful provider sets;
	// membership here is who *validates*.
	ASPA *asn.IndexSet
	// Peerlock enables the tier-1 clique's mutual route-leak filters:
	// with it on, every tier-1 drops leaked routes. It is modeled as the
	// club acting together, hence a single switch rather than a set.
	Peerlock bool
}

// RovOnly is the paper's original defense shape: an origin-validation
// deployment set and nothing else.
func RovOnly(blocked *asn.IndexSet) Defense { return Defense{Blocked: blocked} }

// IsZero reports whether no mechanism is deployed.
func (d Defense) IsZero() bool { return d.Blocked == nil && d.ASPA == nil && !d.Peerlock }

// DefenseMech is a bitmask naming defense mechanisms, the CLI currency
// for "deploy mechanism X at deployment set Y".
type DefenseMech uint8

const (
	// MechROV deploys route-origin validation at the set.
	MechROV DefenseMech = 1 << iota
	// MechASPA deploys ASPA path validation at the set.
	MechASPA
	// MechPeerlock turns on the tier-1 Peerlock club.
	MechPeerlock
)

// ParseDefenseMech parses a '+'-joined mechanism list, e.g. "rov",
// "aspa+peerlock". "" and "none" mean no mechanism.
func ParseDefenseMech(s string) (DefenseMech, error) {
	if s == "" || s == "none" {
		return 0, nil
	}
	var m DefenseMech
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "rov":
			m |= MechROV
		case "aspa":
			m |= MechASPA
		case "peerlock":
			m |= MechPeerlock
		default:
			return 0, fmt.Errorf("unknown defense mechanism %q (want rov, aspa, peerlock or none)", part)
		}
	}
	return m, nil
}

// String renders the mask in the CLI "rov+aspa+peerlock" form.
func (m DefenseMech) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m&MechROV != 0 {
		parts = append(parts, "rov")
	}
	if m&MechASPA != 0 {
		parts = append(parts, "aspa")
	}
	if m&MechPeerlock != 0 {
		parts = append(parts, "peerlock")
	}
	return strings.Join(parts, "+")
}

// Deploy materializes the mechanisms at a deployment set: ROV and ASPA
// validate at the set's members, Peerlock (a club property, not a
// per-node one) switches on when selected.
func (m DefenseMech) Deploy(set *asn.IndexSet) Defense {
	var d Defense
	if m&MechROV != 0 {
		d.Blocked = set
	}
	if m&MechASPA != 0 {
		d.ASPA = set
	}
	if m&MechPeerlock != 0 {
		d.Peerlock = true
	}
	return d
}

// scenario is the resolved static semantics of one (Attack, Defense)
// pair: which deployments actually filter this attack's announcement,
// and how deep the attacker's advertised path starts. Both engines
// evaluate exactly this value, so their outcomes agree by construction.
type scenario struct {
	blocked  *asn.IndexSet // ROV validators that drop the announcement
	aspa     *asn.IndexSet // ASPA validators that drop the announcement
	peerlock bool          // tier-1s drop the announcement (leaked route)
	// seedDist is the attacker's advertised path length at origination: 0
	// for an origin hijack, 1 for a forged-origin prepend, the leaked
	// route's real length for a leak.
	seedDist int16
	// seedAttacker is false when the attack is a no-op (a route leak by
	// an attacker with no route to leak) and only the target announces.
	seedAttacker bool
}

// rejects reports whether node i drops routes leading to org under the
// resolved scenario. This is the shared validation kernel of both the
// solver stages and the engine's pre-RIB import filter.
//
//bgplint:hotpath runs once per (node, candidate route) edge relaxation
func (sc *scenario) rejects(pol *Policy, i int32, org int8) bool {
	if org != OriginAttacker {
		return false
	}
	if sc.blocked != nil && sc.blocked.Contains(int(i)) {
		return true
	}
	if sc.aspa != nil && sc.aspa.Contains(int(i)) {
		return true
	}
	return sc.peerlock && pol.tier1[i]
}

// FiltersImport reports whether node would drop the attack's bogus
// announcement under the deployed defense — the same static import
// predicate both engines apply during a solve, exposed for post-hoc
// analyses (e.g. miss classification) that explain a converged outcome.
// The attacker's seed distance is irrelevant to the predicate, so no
// baseline solve is needed.
func FiltersImport(pol *Policy, at Attack, def Defense, node int) bool {
	sc, err := buildScenario(pol, at, def, func() (int16, bool) { return 0, true })
	if err != nil {
		return false
	}
	return sc.rejects(pol, int32(node), OriginAttacker)
}

// aspaAuthorizedProvider walks the victim's registered provider set — the
// ASPA object every AS is assumed to publish truthfully — and reports
// whether provider appears in it. A forged-origin path whose forged
// adjacency matches a registered provider is plausible to every
// validator.
//
//bgplint:hotpath runs once per solve on the victim's provider list
func aspaAuthorizedProvider(pol *Policy, provider, of int) bool {
	for _, p := range pol.Providers(of) {
		if int(p) == provider {
			return true
		}
	}
	return false
}

// buildScenario resolves (attack, defense) into the static scenario both
// engines run. baseline computes the attacker's defense-free converged
// route distance to the target (and whether one exists) — only consulted
// for route leaks, which re-announce that route.
func buildScenario(pol *Policy, at Attack, def Defense, baseline func() (int16, bool)) (scenario, error) {
	switch at.Kind {
	case KindOrigin:
		return scenario{blocked: def.Blocked, seedDist: 0, seedAttacker: true}, nil
	case KindForgedOrigin:
		sc := scenario{seedDist: 1, seedAttacker: true}
		if !aspaAuthorizedProvider(pol, at.Attacker, at.Target) {
			sc.aspa = def.ASPA
		}
		return sc, nil
	case KindRouteLeak:
		if at.SubPrefix {
			return scenario{}, fmt.Errorf("scenario: a route leak re-announces the real prefix; sub-prefix route leaks are not a thing")
		}
		sc := scenario{aspa: def.ASPA, peerlock: def.Peerlock}
		if d, ok := baseline(); ok {
			sc.seedDist = d
			sc.seedAttacker = true
		}
		return sc, nil
	default:
		return scenario{}, fmt.Errorf("scenario: unknown attack kind %d", int8(at.Kind))
	}
}
