package ribcompare

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// twoProviders builds a topology where equal-length provider paths to a
// multi-homed origin exist, so tie-break perturbation flips exactly those
// hops:
//
//	T1a(1) ==== T1b(2)      (origin o(20) is a customer of both)
//	  |  \      /  |
//	  |   A(10)  B(11)      (both customers of both tier-1s)
//	  |            |
//	 o(20)        s(30)
func twoProviders(t *testing.T) (*topology.Graph, *core.Policy, *core.Policy) {
	t.Helper()
	b := topology.NewBuilder()
	links := []struct {
		a, c asn.ASN
		r    topology.Rel
	}{
		{1, 2, topology.RelPeer},
		{1, 10, topology.RelCustomer},
		{2, 10, topology.RelCustomer},
		{1, 11, topology.RelCustomer},
		{2, 11, topology.RelCustomer},
		{1, 20, topology.RelCustomer},
		{2, 20, topology.RelCustomer},
		{11, 30, topology.RelCustomer},
	}
	for _, l := range links {
		if err := b.AddLink(l.a, l.c, l.r); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	cl := topology.Classify(g, topology.ClassifyOptions{Tier2MinCustomers: 1})
	polLo, err := core.NewPolicy(g, cl.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	polHi, err := core.NewPolicy(g, cl.Tier1, core.WithPreferHighNextHop(true))
	if err != nil {
		t.Fatal(err)
	}
	return g, polLo, polHi
}

func ix(t *testing.T, g *topology.Graph, a asn.ASN) int {
	t.Helper()
	i, ok := g.Index(a)
	if !ok {
		t.Fatalf("missing AS%v", a)
	}
	return i
}

func TestCompareRouteKinds(t *testing.T) {
	g, _, _ := twoProviders(t)
	t1a, t1b := ix(t, g, 1), ix(t, g, 2)
	a, bb := ix(t, g, 10), ix(t, g, 11)
	o := ix(t, g, 20)
	s := ix(t, g, 30)

	if got := CompareRoute(g, []int{s, bb, t1a, o}, []int{s, bb, t1a, o}); got != Exact {
		t.Errorf("identical = %v", got)
	}
	// Same length/endpoints, provider substituted for provider: s reaches
	// the core via T1a in one table and T1b in the other.
	if got := CompareRoute(g, []int{s, bb, t1a, o}, []int{s, bb, t1b, o}); got != TopoEquivalent {
		t.Errorf("provider substitution = %v", got)
	}
	// Different lengths.
	if got := CompareRoute(g, []int{s, bb, t1a, o}, []int{s, t1a, o}); got != Mismatch {
		t.Errorf("length difference = %v", got)
	}
	// One side missing.
	if got := CompareRoute(g, nil, []int{s, bb}); got != Missing {
		t.Errorf("missing = %v", got)
	}
	// Substituted hop with a different relationship: A reaches T1a as
	// customer→provider; a fabricated path hopping peer A→B is not
	// equivalent to a provider hop.
	if got := CompareRoute(g, []int{o, t1a, bb, s}, []int{o, t1a, a, s}); got == TopoEquivalent {
		t.Errorf("non-adjacent/odd substitution should not be topo-equivalent, got %v", got)
	}
	_ = a
}

// TestValidationStudy runs the paper's methodology end to end: simulate
// with the default policy, build the "real world" from a tie-break
// perturbed policy, compare full RIBs. The match rate must be high but
// below 100 % (ties exist by construction), and every non-exact match must
// be a legal substitution.
func TestValidationStudy(t *testing.T) {
	g, polLo, polHi := twoProviders(t)
	origin := ix(t, g, 20)
	sLo := core.NewSolver(polLo)
	sHi := core.NewSolver(polHi)
	// Single-origin routing state via the SubPrefix trick.
	at := core.Attack{Target: ix(t, g, 30), Attacker: origin, SubPrefix: true}
	oLo, err := sLo.Solve(at, nil)
	if err != nil {
		t.Fatal(err)
	}
	oHi, err := sHi.Solve(at, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(g, FromOutcome(oLo), FromOutcome(oHi))
	if rep.Total() != g.N() {
		t.Errorf("compared %d entries, want %d", rep.Total(), g.N())
	}
	if rep.Missing != 0 {
		t.Errorf("missing = %d, want 0 (both policies route everywhere)", rep.Missing)
	}
	if rep.MatchRate() < 0.5 {
		t.Errorf("match rate %.2f suspiciously low", rep.MatchRate())
	}
	if rep.Exact == rep.Total() {
		t.Error("perturbation produced zero differences; validation study is vacuous")
	}
}

// TestValidationStudySynthetic repeats the study at scale and checks the
// aggregate properties hold on a generated topology.
func TestValidationStudySynthetic(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultParams(900))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	cl := topology.Classify(cg, topology.ClassifyOptions{})
	polLo, err := core.NewPolicy(cg, cl.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	polHi, err := core.NewPolicy(cg, cl.Tier1, core.WithPreferHighNextHop(true))
	if err != nil {
		t.Fatal(err)
	}
	at := core.Attack{Target: 1, Attacker: 0, SubPrefix: true}
	oLo, err := core.NewSolver(polLo).Solve(at, nil)
	if err != nil {
		t.Fatal(err)
	}
	oHi, err := core.NewSolver(polHi).Solve(at, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(cg, FromOutcome(oLo), FromOutcome(oHi))
	if rep.Total() != cg.N() {
		t.Fatalf("total = %d, want %d", rep.Total(), cg.N())
	}
	if rep.Exact == 0 {
		t.Error("no exact matches at all")
	}
	if rate := rep.MatchRate(); rate < 0.3 || rate > 1.0 {
		t.Errorf("match rate %.2f out of plausible band", rate)
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}
}
