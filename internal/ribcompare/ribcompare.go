// Package ribcompare implements the paper's Section III validation
// methodology: comparing routing tables produced by the simulator against
// reference RIBs (the paper used Oregon RouteViews dumps and found 62 % of
// simulated routes matched exactly or were "topologically equivalent —
// one provider substituted for another"). The same matcher runs here
// against reference tables from a policy-perturbed simulation, exercising
// the identical comparison code path.
package ribcompare

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// RIB maps each node to its AS path (node indices, from the node itself to
// the origin). Nodes without a route are absent.
type RIB map[int][]int

// FromOutcome extracts the full routing table of a converged outcome.
func FromOutcome(o *core.Outcome) RIB {
	rib := make(RIB, o.N())
	for i := 0; i < o.N(); i++ {
		if p := o.Path(i); p != nil {
			rib[i] = p
		}
	}
	return rib
}

// MatchKind classifies one route comparison.
type MatchKind int

const (
	// Exact: identical AS paths.
	Exact MatchKind = iota
	// TopoEquivalent: same length and endpoints, differing only in hops
	// that substitute one AS for another with the same relationship to the
	// preceding hop (the paper's "one provider substituted for another").
	TopoEquivalent
	// Mismatch: both RIBs carry a route but the paths differ structurally.
	Mismatch
	// Missing: exactly one of the RIBs carries a route.
	Missing
)

// String returns the match-kind name.
func (k MatchKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case TopoEquivalent:
		return "topo-equivalent"
	case Mismatch:
		return "mismatch"
	case Missing:
		return "missing"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(k))
	}
}

// CompareRoute classifies a single pair of paths over graph g. Paths that
// are not contiguous in the graph (possible with externally supplied
// reference RIBs) classify as Mismatch.
func CompareRoute(g *topology.Graph, sim, ref []int) MatchKind {
	if len(sim) == 0 || len(ref) == 0 {
		return Missing
	}
	if equalPath(sim, ref) {
		return Exact
	}
	if len(sim) != len(ref) {
		return Mismatch
	}
	// Same endpoints required.
	if sim[0] != ref[0] || sim[len(sim)-1] != ref[len(ref)-1] {
		return Mismatch
	}
	if !contiguous(g, sim) || !contiguous(g, ref) {
		return Mismatch
	}
	// Every differing interior hop must hold the same relationship to the
	// preceding hop on its own path (provider substituted for provider,
	// peer for peer…).
	for k := 1; k < len(sim)-1; k++ {
		if sim[k] == ref[k] {
			continue
		}
		rs := g.Rel(sim[k-1], sim[k])
		rr := g.Rel(ref[k-1], ref[k])
		if rs != rr {
			return Mismatch
		}
	}
	return TopoEquivalent
}

func contiguous(g *topology.Graph, path []int) bool {
	for k := 0; k+1 < len(path); k++ {
		if g.Rel(path[k], path[k+1]) == 0 {
			return false
		}
	}
	return true
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Report aggregates a whole-RIB comparison.
type Report struct {
	Exact          int
	TopoEquivalent int
	Mismatch       int
	Missing        int
}

// Total returns the number of compared node entries.
func (r Report) Total() int { return r.Exact + r.TopoEquivalent + r.Mismatch + r.Missing }

// MatchRate returns the fraction of entries that matched exactly or were
// topologically equivalent — the paper's headline 62 % metric.
func (r Report) MatchRate() float64 {
	if r.Total() == 0 {
		return 0
	}
	return float64(r.Exact+r.TopoEquivalent) / float64(r.Total())
}

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("exact=%d topo-equivalent=%d mismatch=%d missing=%d match-rate=%.1f%%",
		r.Exact, r.TopoEquivalent, r.Mismatch, r.Missing, 100*r.MatchRate())
}

// Compare classifies every node present in either RIB.
func Compare(g *topology.Graph, sim, ref RIB) Report {
	var rep Report
	seen := make(map[int]bool, len(sim))
	classify := func(node int) {
		if seen[node] {
			return
		}
		seen[node] = true
		switch CompareRoute(g, sim[node], ref[node]) {
		case Exact:
			rep.Exact++
		case TopoEquivalent:
			rep.TopoEquivalent++
		case Mismatch:
			rep.Mismatch++
		case Missing:
			rep.Missing++
		}
	}
	for node := range sim { //bgplint:ignore maporder classify is idempotent per node and increments commutative counters
		classify(node)
	}
	for node := range ref { //bgplint:ignore maporder classify is idempotent per node and increments commutative counters
		classify(node)
	}
	return rep
}
