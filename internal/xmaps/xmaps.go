// Package xmaps provides deterministic map traversal helpers. Go
// randomizes map iteration order; inside the simulator's deterministic
// packages (see bgplint's maporder analyzer) every map walk whose effect
// could depend on visit order goes through SortedKeys instead.
package xmaps

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
