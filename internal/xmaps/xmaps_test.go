package xmaps

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[int32]string{5: "e", 1: "a", 3: "c", -2: "z"}
	got := SortedKeys(m)
	want := []int32{-2, 1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	if keys := SortedKeys(map[string]int{}); len(keys) != 0 {
		t.Errorf("SortedKeys(empty) = %v, want empty", keys)
	}
}
