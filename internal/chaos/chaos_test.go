package chaos

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/tick"
)

// scriptConn is a deterministic in-memory ReadWriteCloser: reads serve
// fixed chunks, writes append to a buffer.
type scriptConn struct {
	mu      sync.Mutex
	reads   [][]byte
	written bytes.Buffer
	closed  bool
}

func (s *scriptConn) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, io.ErrClosedPipe
	}
	if len(s.reads) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.reads[0])
	if n == len(s.reads[0]) {
		s.reads = s.reads[1:]
	} else {
		s.reads[0] = s.reads[0][n:]
	}
	return n, nil
}

func (s *scriptConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, io.ErrClosedPipe
	}
	return s.written.Write(p)
}

func (s *scriptConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *scriptConn) bytesWritten() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.written.Bytes()...)
}

// run performs a fixed op sequence against a freshly wrapped conn and
// returns the fault outcome fingerprint: stats, written bytes, and
// per-op errors.
func runSequence(seed int64, cfg Config) (Stats, []byte, []string) {
	inner := &scriptConn{reads: [][]byte{{1, 2, 3}, {4, 5}, {6}, {7}, {8}, {9}, {10}, {11}}}
	c := Wrap(inner, seed, cfg)
	var errs []string
	record := func(err error) {
		if err == nil {
			errs = append(errs, "ok")
		} else {
			errs = append(errs, err.Error())
		}
	}
	buf := make([]byte, 16)
	for i := 0; i < 8; i++ {
		_, err := c.Write([]byte{byte(0xe0 + i), 0x01, 0x02, 0x03})
		record(err)
		_, err = c.Read(buf)
		record(err)
	}
	return c.Stats(), inner.bytesWritten(), errs
}

// TestSameSeedSameFaults: identical seeds must produce identical fault
// schedules, byte streams, and errors — the determinism contract CI's
// fixed-seed chaos job depends on.
func TestSameSeedSameFaults(t *testing.T) {
	cfg := Config{PReset: 0.1, PTruncate: 0.15, PCorrupt: 0.15, PStall: 0.2}
	s1, w1, e1 := runSequence(42, cfg)
	s2, w2, e2 := runSequence(42, cfg)
	if s1 != s2 {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
	if !bytes.Equal(w1, w2) {
		t.Errorf("written bytes diverged:\n%x\n%x", w1, w2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("op %d outcome diverged: %q vs %q", i, e1[i], e2[i])
		}
	}
	// And a different seed must (for this config) pick a different
	// schedule — otherwise the seed isn't actually feeding the faults.
	s3, _, _ := runSequence(43, cfg)
	if s1 == s3 {
		t.Errorf("seeds 42 and 43 injected identical fault counts %+v; seed not wired through", s1)
	}
}

// TestZeroConfigIsTransparent: the zero Config must inject nothing and
// pass bytes through unchanged.
func TestZeroConfigIsTransparent(t *testing.T) {
	stats, written, errs := runSequence(1, Config{})
	if stats != (Stats{}) {
		t.Errorf("zero config injected faults: %+v", stats)
	}
	want := []byte{0xe0, 1, 2, 3, 0xe1, 1, 2, 3, 0xe2, 1, 2, 3, 0xe3, 1, 2, 3, 0xe4, 1, 2, 3, 0xe5, 1, 2, 3, 0xe6, 1, 2, 3, 0xe7, 1, 2, 3}
	if !bytes.Equal(written, want) {
		t.Errorf("passthrough mangled bytes:\n got %x\nwant %x", written, want)
	}
	for i, e := range errs {
		if e != "ok" {
			t.Errorf("op %d errored under zero config: %s", i, e)
		}
	}
}

// TestCorruptionDeliversAndErrors: a corrupted write must flip the first
// byte, deliver the full frame, and report ErrCorrupted to the writer.
func TestCorruptionDeliversAndErrors(t *testing.T) {
	inner := &scriptConn{}
	c := Wrap(inner, 5, Config{PCorrupt: 1})
	payload := []byte{0xff, 0xaa, 0xbb}
	n, err := c.Write(payload)
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Write err = %v, want ErrCorrupted", err)
	}
	if n != len(payload) {
		t.Errorf("n = %d, want %d (full frame delivered)", n, len(payload))
	}
	got := inner.bytesWritten()
	want := []byte{0x00, 0xaa, 0xbb} // first byte flipped
	if !bytes.Equal(got, want) {
		t.Errorf("delivered %x, want %x", got, want)
	}
	if payload[0] != 0xff {
		t.Error("caller's buffer was mutated")
	}
	if st := c.Stats(); st.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", st.Corruptions)
	}
}

// TestTruncationPoisons: a truncated write delivers a strict prefix,
// returns ErrTruncated, and poisons the conn (stream desynchronized).
func TestTruncationPoisons(t *testing.T) {
	inner := &scriptConn{reads: [][]byte{{1}}}
	c := Wrap(inner, 9, Config{PTruncate: 1})
	payload := []byte{10, 20, 30, 40, 50}
	n, err := c.Write(payload)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Write err = %v, want ErrTruncated", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Errorf("n = %d, want a strict prefix of %d", n, len(payload))
	}
	if got := inner.bytesWritten(); len(got) != n || !bytes.Equal(got, payload[:n]) {
		t.Errorf("delivered %x, want prefix %x", got, payload[:n])
	}
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrReset) {
		t.Errorf("write after truncation = %v, want ErrReset", err)
	}
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrReset) {
		t.Errorf("read after truncation = %v, want ErrReset", err)
	}
	if !inner.closed {
		t.Error("poisoned conn did not close the inner conn")
	}
}

// TestResetClosesInner: an injected reset errors the op and closes the
// wrapped conn, like a peer RST.
func TestResetClosesInner(t *testing.T) {
	inner := &scriptConn{reads: [][]byte{{1}}}
	c := Wrap(inner, 3, Config{PReset: 1})
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrReset) {
		t.Fatalf("Read err = %v, want ErrReset", err)
	}
	if !inner.closed {
		t.Error("reset did not close the inner conn")
	}
	if st := c.Stats(); st.Resets != 1 {
		t.Errorf("Resets = %d, want 1", st.Resets)
	}
}

// TestStallUsesInjectedClock: a stall must block on the injected clock
// (no wall-clock sleep) and release when the fake clock advances.
func TestStallUsesInjectedClock(t *testing.T) {
	fc := tick.NewFake()
	inner := &scriptConn{reads: [][]byte{{1, 2}}}
	c := Wrap(inner, 11, Config{PStall: 1, Stall: time.Hour, Clock: fc})
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		done <- err
	}()
	fc.BlockUntilTimers(1)
	select {
	case <-done:
		t.Fatal("stalled read returned before the clock advanced")
	default:
	}
	fc.Advance(time.Hour)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stalled read err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled read never released")
	}
	if st := c.Stats(); st.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", st.Stalls)
	}
}
