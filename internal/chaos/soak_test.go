package chaos_test

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/chaos"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// chaos.seed selects the fault schedule; CI runs the soak at two fixed
// seeds: go test ./internal/chaos/ -args -chaos.seed=N
var chaosSeed = flag.Int64("chaos.seed", 1, "base seed for the chaotic soak run")

const soakProbes = 6

type soakResult struct {
	alerts     []feed.Alert
	sessions   int
	reconnects int
	faults     chaos.Stats
}

// runSoak drives soakProbes probe runners — each announcing one valid
// route and one unique hijack — through a transport that injects
// resets, truncations, corruption, and stalls, and returns what the
// detector saw once every expected alert arrived.
func runSoak(t *testing.T, seed int64, chaotic bool) soakResult {
	t.Helper()
	var store rpki.Store
	det := feed.NewDetector(&store, nil)
	for i := 0; i < soakProbes; i++ {
		p := prefix.MustParse(fmt.Sprintf("10.%d.0.0/16", i))
		if err := store.Add(rpki.ROA{Prefix: p, MaxLength: 24, Origin: asn.ASN(1000 + i)}); err != nil {
			t.Fatal(err)
		}
		det.NotePublished(p)
	}
	collector := &feed.Collector{
		LocalAS: 65535, RouterID: 1, Detector: det,
		HoldTime: 30, MaxMalformed: 3,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	cfg := chaos.Config{
		PReset: 0.15, PTruncate: 0.1, PCorrupt: 0.1,
		PStall: 0.2, Stall: 500 * time.Microsecond,
	}
	var (
		connMu     sync.Mutex
		chaosConns []*chaos.Conn
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runners := make([]*feed.ProbeRunner, soakProbes)
	var wg sync.WaitGroup
	for j := 0; j < soakProbes; j++ {
		probeAS := asn.ASN(65001 + j)
		p16 := prefix.MustParse(fmt.Sprintf("10.%d.0.0/16", j))
		attempts := 0 // Dial runs serially within one runner; no lock needed
		r := &feed.ProbeRunner{
			AS: probeAS, RouterID: uint32(100 + j),
			HoldTime:    30,
			BackoffBase: time.Millisecond,
			BackoffMax:  10 * time.Millisecond,
			Jitter:      rand.New(rand.NewSource(seed + int64(j))),
			Dial: func() (io.ReadWriteCloser, error) {
				conn, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
				if err != nil {
					return nil, err
				}
				attempts++
				// The first attempts fight the chaotic transport; after
				// that the weather clears, so the soak always terminates.
				if !chaotic || attempts > 6 {
					return conn, nil
				}
				cc := chaos.Wrap(conn, seed*1000+int64(j)*100+int64(attempts), cfg)
				connMu.Lock()
				chaosConns = append(chaosConns, cc)
				connMu.Unlock()
				return cc, nil
			},
		}
		// One valid announcement for the probe's own prefix...
		r.Enqueue(&bgpwire.Update{
			Origin: bgpwire.OriginIGP, NextHop: 1,
			ASPath: []asn.ASN{probeAS, asn.ASN(1000 + j)},
			NLRI:   []prefix.Prefix{p16},
		})
		// ...and one unique hijack: even probes forge the origin on the
		// covering /16, odd probes announce a bogus more-specific /24.
		bogus := p16
		if j%2 == 1 {
			bogus = prefix.MustParse(fmt.Sprintf("10.%d.4.0/24", j))
		}
		r.Enqueue(&bgpwire.Update{
			Origin: bgpwire.OriginIGP, NextHop: 1,
			ASPath: []asn.ASN{probeAS, asn.ASN(4000 + j)},
			NLRI:   []prefix.Prefix{bogus},
		})
		runners[j] = r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.Run(ctx)
		}()
	}

	// Fixpoint: every hijack is eventually alerted exactly once, no
	// matter how many sessions the faults burned through on the way.
	deadline := time.Now().Add(30 * time.Second)
	for len(det.Alerts()) < soakProbes {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: only %d/%d alerts after 30s", seed, len(det.Alerts()), soakProbes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Grace period: retransmissions must not mint duplicate alerts.
	time.Sleep(25 * time.Millisecond)
	if n := len(det.Alerts()); n != soakProbes {
		t.Fatalf("seed %d: %d alerts, want exactly %d", seed, n, soakProbes)
	}

	cancel()
	wg.Wait()
	l.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := collector.Shutdown(sctx); err != nil {
		t.Fatalf("seed %d: shutdown: %v", seed, err)
	}
	<-serveDone

	res := soakResult{alerts: det.Alerts()}
	for _, r := range runners {
		st := r.Stats()
		res.sessions += st.Sessions
		res.reconnects += st.Reconnects
	}
	connMu.Lock()
	for _, cc := range chaosConns {
		st := cc.Stats()
		res.faults.Resets += st.Resets
		res.faults.Truncations += st.Truncations
		res.faults.Corruptions += st.Corruptions
		res.faults.Stalls += st.Stalls
	}
	connMu.Unlock()
	return res
}

// TestSoakChaoticFeedDeliversEveryAlertExactlyOnce is the headline
// robustness property: a hijack feed pushed through a transport full of
// resets, truncations, corruption, and stalls produces exactly the same
// alert set as a fault-free run — delayed, reconnected, retransmitted,
// but never lost and never duplicated.
func TestSoakChaoticFeedDeliversEveryAlertExactlyOnce(t *testing.T) {
	baseline := runSoak(t, 0, false)
	if len(baseline.alerts) != soakProbes {
		t.Fatalf("baseline alerts = %d, want %d", len(baseline.alerts), soakProbes)
	}
	want := feed.AlertSetDigest(baseline.alerts)

	for _, seed := range []int64{*chaosSeed, *chaosSeed + 41} {
		res := runSoak(t, seed, true)
		got := feed.AlertSetDigest(res.alerts)
		if got != want {
			t.Errorf("seed %d: alert-set digest %x != fault-free digest %x", seed, got, want)
		}
		if res.faults == (chaos.Stats{}) {
			t.Errorf("seed %d: chaotic run injected no faults; soak exercised nothing", seed)
		}
		if res.reconnects == 0 {
			t.Errorf("seed %d: no reconnects; fault schedule never killed a session (faults: %+v)", seed, res.faults)
		}
		t.Logf("seed %d: %d sessions, %d reconnects, faults %+v", seed, res.sessions, res.reconnects, res.faults)
	}
}
