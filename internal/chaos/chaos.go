// Package chaos provides a deterministic fault-injecting wrapper around
// an io.ReadWriteCloser, for soak-testing the live feed transport
// (internal/feed) against the failures real BGP monitoring sessions
// die of: connection resets, mid-message truncation, partial writes,
// latency stalls, and detectable byte corruption.
//
// Determinism contract: every fault decision is drawn from one of two
// seeded generators — one for the read direction, one for the write
// direction — so for a fixed seed the k-th read and the k-th write on a
// Conn always experience the same fate, regardless of how the two
// directions interleave. No wall clock and no global rand are consulted
// anywhere (stalls sleep on an injected tick.Clock), which keeps the
// package admissible under bgplint and lets fault schedules replay
// bit-for-bit in CI at fixed seeds.
//
// Loss model: any fault that could silently lose or mangle payload is
// surfaced to the caller as an error, mirroring what TCP's checksums
// and resets guarantee a real BGP speaker. Corruption flips the first
// byte of the written frame — a BGP marker byte, so the receiver
// detects it as a malformed message while its framing stays aligned —
// and still reports an error to the writer so the sender retransmits.
// Under this model a feed.ProbeRunner driving a chaotic transport can
// be delayed but never lose an announcement, which is exactly the
// property the soak test pins with alert-set digests.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/bgpsim/bgpsim/internal/tick"
)

// ErrReset is the error surfaced by an injected connection reset.
var ErrReset = errors.New("chaos: connection reset")

// ErrTruncated is the error surfaced after a mid-message truncation or
// partial write.
var ErrTruncated = errors.New("chaos: write truncated")

// ErrCorrupted is the error surfaced to the writer after injected byte
// corruption (the corrupted bytes are still delivered, so the reader
// sees a malformed frame).
var ErrCorrupted = errors.New("chaos: write corrupted")

// Config sets per-operation fault probabilities. Probabilities are
// evaluated in the order reset, truncate/partial, corrupt, stall; at
// most one fault fires per operation. The zero Config injects nothing.
type Config struct {
	// PReset aborts the operation with ErrReset and poisons the Conn
	// (all later operations fail too, like a closed socket).
	PReset float64
	// PTruncate (writes only) delivers a strict prefix of the message
	// to the underlying conn and returns ErrTruncated.
	PTruncate float64
	// PCorrupt (writes only) flips the first byte of the frame, writes
	// it fully, and returns ErrCorrupted.
	PCorrupt float64
	// PStall delays the operation by Stall before performing it.
	PStall float64
	// Stall is the injected latency for PStall faults.
	Stall time.Duration
	// Clock times stalls; nil means the wall clock. Tests inject a
	// tick.Fake to keep stalls virtual.
	Clock tick.Clock
}

// Stats counts the faults a Conn has injected.
type Stats struct {
	Resets      int
	Truncations int
	Corruptions int
	Stalls      int
}

// Conn wraps inner with seeded fault injection. Reads and writes may
// each be used from one goroutine at a time (the feed layer's reader
// goroutine + session writer pattern); the two directions are
// independently safe.
type Conn struct {
	inner io.ReadWriteCloser
	cfg   Config
	clock tick.Clock

	rmu   sync.Mutex
	rrand *rand.Rand

	wmu   sync.Mutex
	wrand *rand.Rand

	smu      sync.Mutex
	poisoned bool
	stats    Stats
}

// Wrap returns a fault-injecting view of inner. The read and write
// directions draw from independent generators derived from seed, so
// each direction's fault schedule is a pure function of (seed, op
// index).
func Wrap(inner io.ReadWriteCloser, seed int64, cfg Config) *Conn {
	clock := tick.Or(cfg.Clock)
	return &Conn{
		inner: inner,
		cfg:   cfg,
		clock: clock,
		rrand: rand.New(rand.NewSource(seed)),
		wrand: rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15)),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Conn) Stats() Stats {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.stats
}

func (c *Conn) poison() {
	c.smu.Lock()
	c.poisoned = true
	c.stats.Resets++
	c.smu.Unlock()
	_ = c.inner.Close()
}

func (c *Conn) isPoisoned() bool {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.poisoned
}

func (c *Conn) count(f func(*Stats)) {
	c.smu.Lock()
	f(&c.stats)
	c.smu.Unlock()
}

// stall blocks for the configured stall duration on the injected clock.
func (c *Conn) stall() {
	c.count(func(s *Stats) { s.Stalls++ })
	if c.cfg.Stall <= 0 {
		return
	}
	t := c.clock.NewTimer(c.cfg.Stall)
	<-t.C()
}

// Read applies read-direction faults, then reads from the wrapped conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.isPoisoned() {
		return 0, ErrReset
	}
	c.rmu.Lock()
	reset := c.rrand.Float64() < c.cfg.PReset
	stalled := !reset && c.rrand.Float64() < c.cfg.PStall
	c.rmu.Unlock()
	if reset {
		c.poison()
		return 0, ErrReset
	}
	if stalled {
		c.stall()
	}
	return c.inner.Read(p)
}

// Write applies write-direction faults, then writes to the wrapped
// conn. Every fault is reported to the caller; corruption additionally
// delivers the mangled bytes so the receiver exercises its malformed-
// message path.
func (c *Conn) Write(p []byte) (int, error) {
	if c.isPoisoned() {
		return 0, ErrReset
	}
	c.wmu.Lock()
	roll := c.wrand.Float64()
	var cut int
	if len(p) > 1 {
		cut = 1 + c.wrand.Intn(len(p)-1)
	}
	c.wmu.Unlock()

	switch {
	case roll < c.cfg.PReset:
		c.poison()
		return 0, ErrReset
	case roll < c.cfg.PReset+c.cfg.PTruncate && cut > 0:
		c.count(func(s *Stats) { s.Truncations++ })
		n, err := c.inner.Write(p[:cut])
		if err != nil {
			return n, err
		}
		c.poison() // the stream is desynchronized; nothing sane can follow
		return n, ErrTruncated
	case roll < c.cfg.PReset+c.cfg.PTruncate+c.cfg.PCorrupt && len(p) > 0:
		c.count(func(s *Stats) { s.Corruptions++ })
		mangled := append([]byte(nil), p...)
		mangled[0] ^= 0xff // a BGP marker byte: detectably malformed, framing intact
		if n, err := c.inner.Write(mangled); err != nil {
			return n, err
		}
		return len(p), fmt.Errorf("%w (%d bytes)", ErrCorrupted, len(p))
	case roll < c.cfg.PReset+c.cfg.PTruncate+c.cfg.PCorrupt+c.cfg.PStall:
		c.stall()
	}
	return c.inner.Write(p)
}

// Close closes the wrapped conn.
func (c *Conn) Close() error { return c.inner.Close() }
