// Package irr implements an Internet Routing Registry substrate: RPSL
// route objects (RFC 2622) with parsing and serialization, and a queryable
// registry indexed by prefix. The paper names routing registries, together
// with prefix filters built from them, as "the most widely-used techniques
// for prevention"; the registry satisfies rpki.OriginValidator, so the
// same filter and detector machinery runs on IRR data, RPKI ROAs or ROVER
// publications interchangeably — with IRR's well-known weakness (no
// cryptographic protection, stale objects) modeled explicitly.
package irr

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// RouteObject is an RPSL route object: the registration that `origin` may
// announce `route`.
type RouteObject struct {
	Route  prefix.Prefix // the "route:" attribute
	Origin asn.ASN       // the "origin:" attribute
	Descr  string        // free-text description
	MntBy  string        // maintainer
	Source string        // registry source (e.g. "RADB")
}

// Key identifies a route object (route, origin) pair, RPSL's primary key.
func (r RouteObject) Key() string {
	return r.Route.String() + "@" + r.Origin.String()
}

// String serializes the object in RPSL attribute form.
func (r RouteObject) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "route:      %s\n", r.Route)
	fmt.Fprintf(&b, "origin:     %s\n", r.Origin)
	if r.Descr != "" {
		fmt.Fprintf(&b, "descr:      %s\n", r.Descr)
	}
	if r.MntBy != "" {
		fmt.Fprintf(&b, "mnt-by:     %s\n", r.MntBy)
	}
	if r.Source != "" {
		fmt.Fprintf(&b, "source:     %s\n", r.Source)
	}
	return b.String()
}

// Registry is an in-memory IRR database. The zero value is empty and
// ready to use.
type Registry struct {
	trie    prefix.Trie[[]RouteObject]
	objects int
}

var _ rpki.OriginValidator = (*Registry)(nil)

// Add registers a route object; re-adding the same (route, origin) pair
// replaces the earlier object (RPSL primary-key semantics).
func (r *Registry) Add(obj RouteObject) error {
	if obj.Route.Len == 0 {
		return fmt.Errorf("irr: refusing default-route object")
	}
	existing, _ := r.trie.Exact(obj.Route)
	for i, e := range existing {
		if e.Origin == obj.Origin {
			existing[i] = obj
			r.trie.Insert(obj.Route, existing)
			return nil
		}
	}
	r.trie.Insert(obj.Route, append(existing, obj))
	r.objects++
	return nil
}

// Len returns the number of registered route objects.
func (r *Registry) Len() int { return r.objects }

// Lookup returns the route objects registered exactly at p.
func (r *Registry) Lookup(p prefix.Prefix) []RouteObject {
	objs, _ := r.trie.Exact(p)
	return append([]RouteObject(nil), objs...)
}

// Covering returns all route objects whose route covers p, least specific
// first.
func (r *Registry) Covering(p prefix.Prefix) []RouteObject {
	var out []RouteObject
	r.trie.Covering(p, func(_ uint8, objs []RouteObject) bool {
		out = append(out, objs...)
		return true
	})
	return out
}

// Validate implements rpki.OriginValidator over IRR data: an announcement
// is Valid when a route object registers exactly that prefix for the
// origin, Invalid when objects cover the prefix but none authorizes the
// origin at that exact length, NotFound when nothing covers it. IRR has
// no max-length notion, so sub-allocations must be registered explicitly —
// a fidelity-relevant difference from RPKI.
func (r *Registry) Validate(p prefix.Prefix, origin asn.ASN) rpki.Validity {
	res := rpki.NotFound
	r.trie.Covering(p, func(matchLen uint8, objs []RouteObject) bool {
		for _, obj := range objs {
			if obj.Origin == origin && matchLen == p.Len {
				res = rpki.Valid
				return false
			}
			res = rpki.Invalid
		}
		return true
	})
	return res
}

// AuthorizedOrigins returns origins registered exactly for p.
func (r *Registry) AuthorizedOrigins(p prefix.Prefix) asn.Set {
	out := asn.NewSet()
	for _, obj := range r.Lookup(p) {
		out.Add(obj.Origin)
	}
	return out
}

// Write serializes the whole registry, objects separated by blank lines,
// in deterministic (prefix, origin) order.
func (r *Registry) Write(w io.Writer) error {
	var all []RouteObject
	r.trie.Walk(func(_ prefix.Prefix, objs []RouteObject) bool {
		all = append(all, objs...)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Route != all[j].Route {
			if all[i].Route.Addr != all[j].Route.Addr {
				return all[i].Route.Addr < all[j].Route.Addr
			}
			return all[i].Route.Len < all[j].Route.Len
		}
		return all[i].Origin < all[j].Origin
	})
	bw := bufio.NewWriter(w)
	for i, obj := range all {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(obj.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads RPSL route objects (attribute blocks separated by blank
// lines; '%' and '#' comment lines ignored) into a Registry.
func Parse(rd io.Reader) (*Registry, error) {
	reg := &Registry{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)

	var cur *RouteObject
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.Route == (prefix.Prefix{}) {
			return fmt.Errorf("irr: object ending at line %d has no route attribute", lineNo)
		}
		if cur.Origin == 0 {
			return fmt.Errorf("irr: object %v has no origin attribute", cur.Route)
		}
		err := reg.Add(*cur)
		cur = nil
		return err
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.TrimSpace(line) == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("irr: line %d: not an attribute: %q", lineNo, line)
		}
		attr := strings.ToLower(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		if cur == nil {
			if attr != "route" {
				return nil, fmt.Errorf("irr: line %d: object must start with route:, got %q", lineNo, attr)
			}
			cur = &RouteObject{}
		}
		switch attr {
		case "route":
			p, err := prefix.Parse(val)
			if err != nil {
				return nil, fmt.Errorf("irr: line %d: %w", lineNo, err)
			}
			cur.Route = p
		case "origin":
			a, err := asn.Parse(val)
			if err != nil {
				return nil, fmt.Errorf("irr: line %d: %w", lineNo, err)
			}
			cur.Origin = a
		case "descr":
			cur.Descr = val
		case "mnt-by":
			cur.MntBy = val
		case "source":
			cur.Source = val
		default:
			// RPSL objects carry many attributes we do not model; skip.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("irr: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return reg, nil
}

// PrefixFilter is a set of (prefix, origin) pairs an AS accepts from a
// neighbor — the classic IRR-built ingress filter of the paper's Section
// VII ("block the known prefixes of immediate customers").
type PrefixFilter struct {
	allowed map[string]bool
}

// BuildPrefixFilter collects every route object originated by any of the
// given ASes (a customer set) into an ingress filter.
func BuildPrefixFilter(reg *Registry, customers asn.Set) *PrefixFilter {
	f := &PrefixFilter{allowed: make(map[string]bool)}
	reg.trie.Walk(func(p prefix.Prefix, objs []RouteObject) bool {
		for _, obj := range objs {
			if customers.Contains(obj.Origin) {
				f.allowed[RouteObject{Route: p, Origin: obj.Origin}.Key()] = true
			}
		}
		return true
	})
	return f
}

// Permits reports whether the filter accepts an announcement of p by
// origin.
func (f *PrefixFilter) Permits(p prefix.Prefix, origin asn.ASN) bool {
	return f.allowed[RouteObject{Route: p, Origin: origin}.Key()]
}

// Len returns the number of permitted (prefix, origin) pairs.
func (f *PrefixFilter) Len() int { return len(f.allowed) }
