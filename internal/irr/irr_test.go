package irr

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestRegistryAddLookup(t *testing.T) {
	var reg Registry
	obj := RouteObject{Route: mp("129.82.0.0/16"), Origin: 12145, Descr: "CSU", MntBy: "MAINT-CSU", Source: "RADB"}
	if err := reg.Add(obj); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	got := reg.Lookup(mp("129.82.0.0/16"))
	if len(got) != 1 || got[0] != obj {
		t.Errorf("Lookup = %+v", got)
	}
	// Primary-key replace: same (route, origin) with new descr.
	obj2 := obj
	obj2.Descr = "updated"
	if err := reg.Add(obj2); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Errorf("replace changed Len = %d", reg.Len())
	}
	if got := reg.Lookup(mp("129.82.0.0/16")); got[0].Descr != "updated" {
		t.Errorf("replace did not take: %+v", got[0])
	}
	// Multi-origin: second origin for same route is a new object.
	if err := reg.Add(RouteObject{Route: mp("129.82.0.0/16"), Origin: 7}); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Errorf("multi-origin Len = %d", reg.Len())
	}
	// Default route rejected.
	if err := reg.Add(RouteObject{Route: mp("0.0.0.0/0"), Origin: 1}); err == nil {
		t.Error("default route object accepted")
	}
}

func TestRegistryValidate(t *testing.T) {
	var reg Registry
	if err := reg.Add(RouteObject{Route: mp("129.82.0.0/16"), Origin: 12145}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p      string
		origin asn.ASN
		want   rpki.Validity
	}{
		{"129.82.0.0/16", 12145, rpki.Valid},
		{"129.82.0.0/16", 666, rpki.Invalid},
		// IRR has no maxlen: unregistered sub-allocations are Invalid even
		// for the right origin.
		{"129.82.4.0/24", 12145, rpki.Invalid},
		{"10.0.0.0/8", 12145, rpki.NotFound},
	}
	for _, c := range cases {
		if got := reg.Validate(mp(c.p), c.origin); got != c.want {
			t.Errorf("Validate(%s, %v) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
	origins := reg.AuthorizedOrigins(mp("129.82.0.0/16"))
	if len(origins) != 1 || !origins.Contains(12145) {
		t.Errorf("AuthorizedOrigins = %v", origins.Sorted())
	}
}

func TestRegistryCovering(t *testing.T) {
	var reg Registry
	for _, o := range []RouteObject{
		{Route: mp("10.0.0.0/8"), Origin: 1},
		{Route: mp("10.1.0.0/16"), Origin: 2},
		{Route: mp("10.1.1.0/24"), Origin: 3},
	} {
		if err := reg.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	got := reg.Covering(mp("10.1.1.0/24"))
	if len(got) != 3 {
		t.Fatalf("Covering = %d objects", len(got))
	}
	// Least specific first.
	if got[0].Origin != 1 || got[2].Origin != 3 {
		t.Errorf("Covering order: %+v", got)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	in := `% RADB dump excerpt
route:      129.82.0.0/16
origin:     AS12145
descr:      Colorado State University
mnt-by:     MAINT-CSU
source:     RADB

# another object
route:      10.0.0.0/8
origin:     AS1
remarks:    some attribute we skip
`
	reg, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("parsed %d objects", reg.Len())
	}
	if got := reg.Validate(mp("129.82.0.0/16"), 12145); got != rpki.Valid {
		t.Errorf("parsed validation = %v", got)
	}

	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	reg2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if reg2.Len() != reg.Len() {
		t.Errorf("round trip lost objects: %d vs %d", reg2.Len(), reg.Len())
	}
	obj := reg2.Lookup(mp("129.82.0.0/16"))
	if len(obj) != 1 || obj[0].MntBy != "MAINT-CSU" || obj[0].Source != "RADB" {
		t.Errorf("round trip mangled attributes: %+v", obj)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"origin: AS1\n",                        // object not starting with route
		"route: 10.0.0.0/8\n\n",                // missing origin
		"route: nonsense\norigin: AS1\n",       // bad prefix
		"route: 10.0.0.0/8\norigin: pizza\n",   // bad origin
		"this is not an attribute line\n",      // no colon
		"route: 10.0.0.0/8\norigin: AS1\nx\n~", // garbage tail
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestBuildPrefixFilter(t *testing.T) {
	var reg Registry
	for _, o := range []RouteObject{
		{Route: mp("10.0.0.0/8"), Origin: 100},
		{Route: mp("10.1.0.0/16"), Origin: 200},
		{Route: mp("11.0.0.0/8"), Origin: 300},
	} {
		if err := reg.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	f := BuildPrefixFilter(&reg, asn.NewSet(100, 200))
	if f.Len() != 2 {
		t.Fatalf("filter size = %d", f.Len())
	}
	if !f.Permits(mp("10.0.0.0/8"), 100) {
		t.Error("customer route rejected")
	}
	if f.Permits(mp("11.0.0.0/8"), 300) {
		t.Error("non-customer route permitted")
	}
	if f.Permits(mp("10.0.0.0/8"), 200) {
		t.Error("wrong-origin announcement permitted")
	}
	if f.Permits(mp("10.2.0.0/16"), 100) {
		t.Error("unregistered sub-allocation permitted")
	}
}
