package irr

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse: the RPSL parser must never panic, and any registry it
// accepts must survive a Write/Parse round trip with the same object
// count and validation behavior on its own routes.
func FuzzParse(f *testing.F) {
	f.Add("route: 10.0.0.0/8\norigin: AS1\n")
	f.Add("% comment\nroute: 129.82.0.0/16\norigin: AS12145\nsource: RADB\n\nroute: 10.0.0.0/8\norigin: AS1\n")
	f.Fuzz(func(t *testing.T, s string) {
		reg, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := reg.Write(&buf); err != nil {
			t.Fatalf("accepted registry failed to serialize: %v", err)
		}
		reg2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialized registry failed to parse: %v", err)
		}
		if reg2.Len() != reg.Len() {
			t.Fatalf("round trip changed object count: %d vs %d", reg2.Len(), reg.Len())
		}
	})
}
