package queryd

import (
	"math"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

// estimator is the fast answer tier: per-node topological features
// precomputed once at load, combined per query in O(1). The model
// scores the attacker against the target on two features — depth
// (hierarchy distance from the tier-1 core, the classification the
// solver's route preferences are built over) and log degree — and maps
// the score difference through a sigmoid to a polluted share. On the
// generated topologies this ranks attacks at Spearman ρ ≈ 0.69 against
// exact solves; the customer-cone share model (Sermpezis et al.,
// PAPERS.md) was evaluated too but collapses to a constant on the
// stub-vs-stub pairs that dominate random workloads (ρ ≈ 0.17). The
// calibration experiment lives in TestEstimatorTracksExact and is
// summarized in EXPERIMENTS.md.
type estimator struct {
	n int
	// score[i] = depth[i] - degCoef*log1p(degree[i]): lower is a better
	// position in the hijack race. The per-query score difference is
	// target minus attacker, so shallower, better-connected attackers
	// predict larger catchments.
	score []float64
}

// Estimate is the cheap tier's answer: predicted polluted-AS count and
// polluted address-space fraction for an attack.
type Estimate struct {
	Pollution  int     `json:"pollution"`
	WeightFrac float64 `json:"weight_frac"`
}

// Model coefficients, calibrated by MAE/Spearman sweep against exact
// solves on generated topologies (see EXPERIMENTS.md).
const (
	estDegCoef  = 0.5 // weight of log-degree relative to one depth level
	estSigScale = 1.5 // sigmoid slope per score unit (MAE minimum)
	estLeakDamp = 8   // route leaks spread ~an order of magnitude less
)

// newEstimator precomputes the per-node score from the world's
// classification depth and adjacency degree.
func newEstimator(w *experiments.World) *estimator {
	g := w.Graph
	n := g.N()
	e := &estimator{n: n, score: make([]float64, n)}
	for i := 0; i < n; i++ {
		nbrs, _ := g.Neighbors(i)
		e.score[i] = float64(w.Class.Depth[i]) - estDegCoef*math.Log1p(float64(len(nbrs)))
	}
	return e
}

// estimate predicts an attack's pollution in O(1). Forged origins
// propagate one hop longer than the real path but race the same way, so
// the share model carries over; route leaks mostly spread along the
// leaker's provider chain and pollute far less, which estLeakDamp folds
// in.
func (e *estimator) estimate(at core.Attack) Estimate {
	diff := e.score[at.Target] - e.score[at.Attacker]
	share := 1 / (1 + math.Exp(-estSigScale*diff))
	if at.SubPrefix {
		// Longest-prefix match wins everywhere the announcement reaches:
		// near-total pollution regardless of position.
		share = 1
	}
	if at.Kind == core.KindRouteLeak {
		share /= estLeakDamp
	}
	// The target and attacker themselves are never counted as polluted.
	pred := int(share * float64(e.n-2))
	if pred < 0 {
		pred = 0
	}
	return Estimate{Pollution: pred, WeightFrac: share}
}
