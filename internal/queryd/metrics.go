package queryd

import (
	"math/bits"
	"sync/atomic"
)

// latencyHist is a lock-free base-2 latency histogram: bucket k counts
// observations with nanosecond values in [2^(k-1), 2^k). Quantiles are
// read off the bucket boundaries — coarse (±50%) but allocation-free on
// the serving path and monotone under merge.
type latencyHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [64]atomic.Int64
}

func (h *latencyHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// quantile returns the upper bound of the bucket holding the q-th
// (0..1) observation, in nanoseconds; 0 with no observations.
func (h *latencyHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for k := range h.buckets {
		seen += h.buckets[k].Load()
		if seen > rank {
			if k == 0 {
				return 0
			}
			return int64(1)<<uint(k) - 1
		}
	}
	return int64(^uint64(0) >> 1)
}

// endpointMetrics is one query endpoint's serving counters.
type endpointMetrics struct {
	served atomic.Int64
	shed   atomic.Int64
	errs   atomic.Int64
	lat    latencyHist
}

// metrics is the server's observability state, all atomics: the
// /metrics handler snapshots it without stopping the serving path.
type metrics struct {
	attack      endpointMetrics
	vulnerab    endpointMetrics
	deployment  endpointMetrics
	detection   endpointMetrics
	reloads     atomic.Int64
	snapHits    atomic.Int64
	snapMisses  atomic.Int64
	snapBuilds  atomic.Int64
	deltaSolves atomic.Int64
	fullSolves  atomic.Int64
	estimates   atomic.Int64
	inflight    atomic.Int64
}

func newMetrics() *metrics { return &metrics{} }

// endpoint maps a handler name to its counters.
func (m *metrics) endpoint(name string) *endpointMetrics {
	switch name {
	case "attack":
		return &m.attack
	case "vulnerability":
		return &m.vulnerab
	case "deployment":
		return &m.deployment
	case "detection":
		return &m.detection
	}
	return nil
}

// endpointSnapshot is the rendered form of one endpoint's counters.
type endpointSnapshot struct {
	Served    int64 `json:"served"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	P50Ns     int64 `json:"p50_ns"`
	P99Ns     int64 `json:"p99_ns"`
	MeanNs    int64 `json:"mean_ns"`
	Observed  int64 `json:"observed"`
	TotalSumN int64 `json:"sum_ns"`
}

func (e *endpointMetrics) snapshot() endpointSnapshot {
	n := e.lat.count.Load()
	mean := int64(0)
	if n > 0 {
		mean = e.lat.sum.Load() / n
	}
	return endpointSnapshot{
		Served:    e.served.Load(),
		Shed:      e.shed.Load(),
		Errors:    e.errs.Load(),
		P50Ns:     e.lat.quantile(0.50),
		P99Ns:     e.lat.quantile(0.99),
		MeanNs:    mean,
		Observed:  n,
		TotalSumN: e.lat.sum.Load(),
	}
}

// metricsSnapshot is the /metrics response body.
type metricsSnapshot struct {
	Epoch    int64 `json:"epoch"`
	UptimeNs int64 `json:"uptime_ns"`
	Inflight int64 `json:"inflight"`
	Reloads  int64 `json:"reloads"`

	Snapshots struct {
		Cached int   `json:"cached"`
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Builds int64 `json:"builds"`
	} `json:"snapshots"`

	Solves struct {
		Delta     int64 `json:"delta"`
		Full      int64 `json:"full"`
		Estimates int64 `json:"estimates"`
	} `json:"solves"`

	Endpoints map[string]endpointSnapshot `json:"endpoints"`
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	s.mu.RLock()
	st := s.st
	s.mu.RUnlock()
	var out metricsSnapshot
	out.Epoch = st.epoch
	out.UptimeNs = s.clock.Now().Sub(s.started).Nanoseconds()
	out.Inflight = s.met.inflight.Load()
	out.Reloads = s.met.reloads.Load()
	out.Snapshots.Cached = st.cached()
	out.Snapshots.Hits = s.met.snapHits.Load()
	out.Snapshots.Misses = s.met.snapMisses.Load()
	out.Snapshots.Builds = s.met.snapBuilds.Load()
	out.Solves.Delta = s.met.deltaSolves.Load()
	out.Solves.Full = s.met.fullSolves.Load()
	out.Solves.Estimates = s.met.estimates.Load()
	out.Endpoints = map[string]endpointSnapshot{
		"attack":        s.met.attack.snapshot(),
		"vulnerability": s.met.vulnerab.snapshot(),
		"deployment":    s.met.deployment.snapshot(),
		"detection":     s.met.detection.snapshot(),
	}
	return out
}
