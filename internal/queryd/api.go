package queryd

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// apiError carries an HTTP status through the handler plumbing.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// DefenseSpec is the wire form of a deployed defense: node indices per
// mechanism. Indices are the contracted topology's node ids — the same
// ids every batch tool reads and prints.
type DefenseSpec struct {
	ROV      []int `json:"rov,omitempty"`
	ASPA     []int `json:"aspa,omitempty"`
	Peerlock bool  `json:"peerlock,omitempty"`
}

func (d DefenseSpec) resolve(n int) (core.Defense, error) {
	var def core.Defense
	set := func(name string, nodes []int) (*asn.IndexSet, error) {
		if len(nodes) == 0 {
			return nil, nil
		}
		s := asn.NewIndexSet(n)
		for _, i := range nodes {
			if i < 0 || i >= n {
				return nil, badRequest("defense.%s node %d out of range (n=%d)", name, i, n)
			}
			s.Add(i)
		}
		return s, nil
	}
	var err error
	if def.Blocked, err = set("rov", d.ROV); err != nil {
		return def, err
	}
	if def.ASPA, err = set("aspa", d.ASPA); err != nil {
		return def, err
	}
	def.Peerlock = d.Peerlock
	return def, nil
}

// AttackRequest asks one what-if question: if attacker hijacks target
// under this defense, who is polluted? exact=false stops at the
// estimator tier; exact=true escalates to the solver.
type AttackRequest struct {
	Target    int         `json:"target"`
	Attacker  int         `json:"attacker"`
	Kind      string      `json:"kind,omitempty"`
	SubPrefix bool        `json:"sub_prefix,omitempty"`
	Defense   DefenseSpec `json:"defense,omitempty"`
	Exact     bool        `json:"exact,omitempty"`
}

// AttackResponse answers it. Estimate is always present; Pollution and
// WeightFrac only on the exact tier. Path records which machinery
// produced the exact answer: "estimate", "delta" or "full".
type AttackResponse struct {
	Epoch      int64    `json:"epoch"`
	Target     int      `json:"target"`
	Attacker   int      `json:"attacker"`
	Kind       string   `json:"kind"`
	Exact      bool     `json:"exact"`
	Path       string   `json:"path"`
	Estimate   Estimate `json:"estimate"`
	Pollution  *int     `json:"pollution,omitempty"`
	WeightFrac *float64 `json:"weight_frac,omitempty"`
}

// VulnerabilityRequest sweeps one target from a set of attackers (all
// ASes when empty) — the query form of vulnscan's per-target sweep.
type VulnerabilityRequest struct {
	Target    int         `json:"target"`
	Attackers []int       `json:"attackers,omitempty"`
	Kind      string      `json:"kind,omitempty"`
	SubPrefix bool        `json:"sub_prefix,omitempty"`
	Defense   DefenseSpec `json:"defense,omitempty"`
}

// VulnerabilityResponse carries the per-attack measurements in attacker
// order — field-for-field the batch sweep's result arrays.
type VulnerabilityResponse struct {
	Epoch      int64     `json:"epoch"`
	Target     int       `json:"target"`
	Kind       string    `json:"kind"`
	Attackers  []int     `json:"attackers"`
	Pollution  []int     `json:"pollution"`
	WeightFrac []float64 `json:"weight_frac"`
}

// StrategySpec names one deployment rung: exactly one of baseline,
// tier1, top_degree or an explicit node list.
type StrategySpec struct {
	Name      string `json:"name,omitempty"`
	Baseline  bool   `json:"baseline,omitempty"`
	Tier1     bool   `json:"tier1,omitempty"`
	TopDegree int    `json:"top_degree,omitempty"`
	Nodes     []int  `json:"nodes,omitempty"`
}

func (sp StrategySpec) resolve(g *topology.Graph, c *topology.Classification) (deploy.Strategy, error) {
	forms := 0
	if sp.Baseline {
		forms++
	}
	if sp.Tier1 {
		forms++
	}
	if sp.TopDegree > 0 {
		forms++
	}
	if len(sp.Nodes) > 0 {
		forms++
	}
	if forms != 1 {
		return deploy.Strategy{}, badRequest("strategy %q: want exactly one of baseline, tier1, top_degree, nodes", sp.Name)
	}
	var st deploy.Strategy
	switch {
	case sp.Baseline:
		st = deploy.None()
	case sp.Tier1:
		st = deploy.Tier1(c)
	case sp.TopDegree > 0:
		st = deploy.TopDegree(g, sp.TopDegree)
	default:
		for _, i := range sp.Nodes {
			if i < 0 || i >= g.N() {
				return deploy.Strategy{}, badRequest("strategy %q: node %d out of range (n=%d)", sp.Name, i, g.N())
			}
		}
		st = deploy.Custom("custom", sp.Nodes)
	}
	if sp.Name != "" {
		st.Name = sp.Name
	}
	return st, nil
}

// DeploymentRequest evaluates a ladder of deployment strategies against
// one target — the query form of deployscan. Mechs is a '+'-joined
// mechanism list ("rov" when empty, matching the batch default).
type DeploymentRequest struct {
	Target     int            `json:"target"`
	Attackers  []int          `json:"attackers,omitempty"`
	Kind       string         `json:"kind,omitempty"`
	Mechs      string         `json:"mechs,omitempty"`
	Strategies []StrategySpec `json:"strategies"`
}

// StrategyResult is one rung's sweep under its deployment.
type StrategyResult struct {
	Name       string    `json:"name"`
	Deployed   int       `json:"deployed"`
	Pollution  []int     `json:"pollution"`
	WeightFrac []float64 `json:"weight_frac"`
}

// DeploymentResponse carries one StrategyResult per requested rung, in
// request order, all over the same attacker population.
type DeploymentResponse struct {
	Epoch      int64            `json:"epoch"`
	Target     int              `json:"target"`
	Kind       string           `json:"kind"`
	Mechs      string           `json:"mechs"`
	Attackers  []int            `json:"attackers"`
	Strategies []StrategyResult `json:"strategies"`
}

// ProbeSetSpec names one detection vantage configuration.
type ProbeSetSpec struct {
	Name   string `json:"name"`
	Probes []int  `json:"probes"`
}

// DetectionAttack is one workload cell for the detection endpoint.
type DetectionAttack struct {
	Target   int `json:"target"`
	Attacker int `json:"attacker"`
}

// DetectionRequest scores probe configurations against an attack
// workload — the query form of detectscan. Semantics is "selected"
// (default, the paper's feed model) or "any-received".
type DetectionRequest struct {
	Probes    []ProbeSetSpec    `json:"probes"`
	Attacks   []DetectionAttack `json:"attacks"`
	Kind      string            `json:"kind,omitempty"`
	Semantics string            `json:"semantics,omitempty"`
	Defense   DefenseSpec       `json:"defense,omitempty"`
}

// DetectionMiss is one attack no probe of a set saw.
type DetectionMiss struct {
	Attacker  int `json:"attacker"`
	Target    int `json:"target"`
	Pollution int `json:"pollution"`
}

// DetectionResult mirrors detect.Result for one probe set.
type DetectionResult struct {
	Name                    string          `json:"name"`
	TriggerHist             []int           `json:"trigger_hist"`
	MeanPollutionByTriggers []float64       `json:"mean_pollution_by_triggers"`
	Misses                  []DetectionMiss `json:"misses"`
	TotalAttacks            int             `json:"total_attacks"`
	MissRate                float64         `json:"miss_rate"`
}

// DetectionResponse carries one DetectionResult per probe set, in
// request order.
type DetectionResponse struct {
	Epoch   int64             `json:"epoch"`
	Kind    string            `json:"kind"`
	Results []DetectionResult `json:"results"`
}

func parseSemantics(s string) (detect.Semantics, error) {
	switch s {
	case "", "selected":
		return detect.SelectedRoute, nil
	case "any-received", "any":
		return detect.AnyReceived, nil
	default:
		return 0, badRequest("unknown semantics %q (want selected or any-received)", s)
	}
}

// decodeBody strictly decodes a JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// writeJSON renders one response. Encoding errors after the header is
// committed can only be logged by the caller's http.Server.
func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	//bgplint:ignore errdrop the status line is already on the wire; a failed body write has no recovery path
	_ = enc.Encode(body)
}
