// Package queryd is the hijackd serving layer: a long-running what-if
// query service over one loaded world. Where the batch scan tools
// (vulnscan, deployscan, detectscan) re-solve every cell from scratch,
// queryd precomputes converged baseline RIB snapshots (core.Snapshot,
// one per target, valid under every defense config) and answers
// per-attack queries with a delta repair that revisits only the ASes
// whose best route the attacker can change — falling back to a full
// core.Solver run on snapshot-cache misses.
//
// The serving contract (DESIGN.md §11):
//
//   - Snapshots are epoch-versioned. A reload (SIGHUP or POST /reload)
//     installs a fresh epoch and drains in-flight old-epoch queries
//     before the old cache is released; queries never observe a torn
//     epoch.
//   - Admission is bounded: at most Workers queries solve concurrently
//     and at most Backlog more wait. Beyond that the server sheds with a
//     counted 429 + Retry-After instead of queueing unboundedly.
//   - Two-tier answers: a query with "exact": false is answered by an
//     O(1) topological estimator (depth + degree position model);
//     "exact": true escalates to the solver tier. Every exact answer also carries
//     the estimate, so clients can calibrate the cheap tier.
//   - Answers are result-identical to the batch tools: the solver tier
//     feeds the same measurement code (hijack.Measure,
//     detect.MeasureRecord) through the core.OutcomeView seam, and the
//     delta path is pinned equal to a full solve in internal/core.
//
// queryd is a wall-clock serving boundary, registered in lint.Exempt:
// it computes no figure data itself — every result value comes from the
// deterministic core/hijack/detect/deploy layers it wraps. Time enters
// only through a tick.Clock (latency metrics, uptime), so tests can
// drive it deterministically.
package queryd

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// Config describes one serving instance.
type Config struct {
	// World is the loaded topology + policy the server answers over.
	World *experiments.World
	// Workers bounds concurrent solves; 0 means GOMAXPROCS. Each worker
	// owns a reusable DeltaSolver/Solver pair (the sweep runtime's
	// per-worker arena reuse, kept alive across queries).
	Workers int
	// Backlog is how many admitted queries may wait for a worker beyond
	// the Workers already solving; 0 means 2×Workers, negative means no
	// backlog at all. Requests beyond Workers+Backlog are shed with 429.
	Backlog int
	// SnapshotCap bounds the per-epoch baseline cache (snapshots are
	// ~7 bytes/node each); 0 means 64.
	SnapshotCap int
	// Clock supplies time for latency metrics and uptime; nil means the
	// wall clock.
	Clock tick.Clock
}

// Server answers what-if queries over one world. Create with New; it is
// safe for concurrent use.
type Server struct {
	world       *experiments.World
	totalWeight int64
	workers     int
	snapCap     int
	clock       tick.Clock
	est         *estimator
	mux         *http.ServeMux
	met         *metrics
	started     time.Time

	// pool holds the idle solver workers; slots is the admission bound
	// (capacity Workers+Backlog): a request that cannot take a slot
	// without blocking is shed.
	pool  chan *worker
	slots chan struct{}

	// mu guards the epoch swap: queries take the read side just long
	// enough to register on the current epoch's in-flight group.
	mu sync.RWMutex
	st *epochState
}

// New builds a Server: workers and their solvers, the estimator's
// topological features, and the first snapshot epoch.
func New(cfg Config) (*Server, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("queryd: config needs a World")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	backlog := cfg.Backlog
	if backlog == 0 {
		backlog = 2 * workers
	} else if backlog < 0 {
		backlog = 0
	}
	snapCap := cfg.SnapshotCap
	if snapCap <= 0 {
		snapCap = 64
	}
	clock := tick.Or(cfg.Clock)
	s := &Server{
		world:       cfg.World,
		totalWeight: cfg.World.Graph.TotalAddrWeight(),
		workers:     workers,
		snapCap:     snapCap,
		clock:       clock,
		est:         newEstimator(cfg.World),
		met:         newMetrics(),
		started:     clock.Now(),
		pool:        make(chan *worker, workers),
		slots:       make(chan struct{}, workers+backlog),
		st:          newEpochState(1, snapCap),
	}
	for i := 0; i < workers; i++ {
		s.pool <- &worker{
			ds:   core.NewDeltaSolver(cfg.World.Policy),
			full: core.NewSolver(cfg.World.Policy),
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Epoch returns the current snapshot epoch.
func (s *Server) Epoch() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.epoch
}

// acquireState registers the caller on the current epoch. The returned
// state stays fully usable until release, even across a concurrent
// reload: the swap only drops the *new* epoch's reference, and the old
// cache is not released until every registered query has finished.
func (s *Server) acquireState() *epochState {
	s.mu.RLock()
	st := s.st
	st.inflight.Add(1)
	s.mu.RUnlock()
	return st
}

// Reload installs a fresh snapshot epoch — dropping every cached
// baseline — and returns the new epoch once all old-epoch queries have
// drained. The world itself is immutable for the server's lifetime;
// reload re-derives the state built from it.
func (s *Server) Reload() int64 {
	s.mu.Lock()
	old := s.st
	next := newEpochState(old.epoch+1, s.snapCap)
	s.st = next
	s.mu.Unlock()
	// Drain: no new queries can register on old (the swap is done), so
	// Wait is a pure countdown. Only then is the old cache released to
	// the collector.
	old.inflight.Wait()
	s.met.reloads.Add(1)
	return next.epoch
}

// Drain blocks until every query admitted before the call has finished.
// The SIGTERM path runs http.Server.Shutdown (which stops intake and
// waits for handlers) and then Drain as a belt-and-braces barrier.
func (s *Server) Drain() {
	s.mu.RLock()
	st := s.st
	s.mu.RUnlock()
	st.inflight.Wait()
}

// worker is one solver lane: a DeltaSolver for warm snapshot queries
// and a full Solver for cache misses, both reused across every query
// the lane serves.
type worker struct {
	ds   *core.DeltaSolver
	full *core.Solver
}

// admit tries to take an admission slot (non-blocking) and then a
// worker (blocking, bounded by the slot count). ok=false means the
// request must be shed.
func (s *Server) admit() (*worker, bool) {
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, false
	}
	return <-s.pool, true
}

// release returns the worker to the pool and frees the admission slot.
func (s *Server) release(wk *worker) {
	s.pool <- wk
	<-s.slots
}

// snapshotFor returns the cached baseline for target, building (and
// caching) it on this worker when build is true. With build=false a
// cache miss returns nil — the caller answers with a full solve — which
// keeps scattershot-target workloads (detection sweeps) from thrashing
// the cache that point-target queries rely on.
func (s *Server) snapshotFor(st *epochState, wk *worker, target int, build bool) (*core.Snapshot, error) {
	e, ok := st.lookup(target, build)
	if e == nil {
		s.met.snapMisses.Add(1)
		return nil, nil
	}
	if ok {
		s.met.snapHits.Add(1)
	} else {
		s.met.snapMisses.Add(1)
	}
	e.once.Do(func() {
		e.snap, e.err = wk.full.BuildSnapshot(target)
		s.met.snapBuilds.Add(1)
	})
	return e.snap, e.err
}

// solveCell answers one (attack, defense) cell: the delta path against
// snap when available, a full solve otherwise. The returned view is
// transient — it belongs to the worker and is only valid until its next
// solve.
func (wk *worker) solveCell(s *Server, snap *core.Snapshot, at core.Attack, def core.Defense) (core.OutcomeView, error) {
	if snap != nil {
		o, err := wk.ds.SolveDelta(snap, at, def)
		if err != nil {
			return nil, err
		}
		if o.UsedDelta() {
			s.met.deltaSolves.Add(1)
		} else {
			s.met.fullSolves.Add(1)
		}
		return o, nil
	}
	o, err := wk.full.SolveDefense(at, def)
	if err != nil {
		return nil, err
	}
	s.met.fullSolves.Add(1)
	return o, nil
}
