package queryd

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// serverWorld is the white-box tests' shared fixture world.
var (
	serverWorldOnce sync.Once
	serverWorldVal  *experiments.World
	serverWorldErr  error
)

func serverWorld(t testing.TB) *experiments.World {
	t.Helper()
	serverWorldOnce.Do(func() {
		serverWorldVal, serverWorldErr = experiments.NewWorld(250, 3)
	})
	if serverWorldErr != nil {
		t.Fatal(serverWorldErr)
	}
	return serverWorldVal
}

func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.World == nil {
		cfg.World = serverWorld(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func do(t testing.TB, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeInto(t testing.TB, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("decode response: %v\n%s", err, rec.Body.String())
	}
}

func TestHealthzAndUptime(t *testing.T) {
	clk := tick.NewFake()
	s := mustServer(t, Config{Workers: 1, Clock: clk})
	var h struct {
		Status   string `json:"status"`
		Epoch    int64  `json:"epoch"`
		UptimeNs int64  `json:"uptime_ns"`
	}
	rec := do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	decodeInto(t, rec, &h)
	if h.Status != "ok" || h.Epoch != 1 || h.UptimeNs != 0 {
		t.Fatalf("healthz = %+v, want ok/epoch 1/uptime 0", h)
	}
	clk.Advance(3 * time.Second)
	decodeInto(t, do(t, s, "GET", "/healthz", ""), &h)
	if h.UptimeNs != (3 * time.Second).Nanoseconds() {
		t.Fatalf("uptime after advance = %d", h.UptimeNs)
	}
}

func TestReloadBumpsEpochAndDropsCache(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	// Warm the snapshot cache with an exact query.
	rec := do(t, s, "POST", "/v1/attack", `{"target": 5, "attacker": 9, "exact": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("attack status %d: %s", rec.Code, rec.Body.String())
	}
	var m metricsSnapshot
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	if m.Snapshots.Cached != 1 || m.Snapshots.Builds != 1 {
		t.Fatalf("after warm query: cached=%d builds=%d, want 1/1", m.Snapshots.Cached, m.Snapshots.Builds)
	}

	var r struct {
		Epoch int64 `json:"epoch"`
	}
	decodeInto(t, do(t, s, "POST", "/reload", ""), &r)
	if r.Epoch != 2 {
		t.Fatalf("reload epoch = %d, want 2", r.Epoch)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("server epoch = %d, want 2", got)
	}
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	if m.Epoch != 2 || m.Reloads != 1 || m.Snapshots.Cached != 0 {
		t.Fatalf("after reload: epoch=%d reloads=%d cached=%d, want 2/1/0", m.Epoch, m.Reloads, m.Snapshots.Cached)
	}
}

// TestReloadDrainsInflight pins the drain contract: Reload returns only
// after every query registered on the old epoch has finished, and such
// a query keeps its (old-epoch) state usable throughout.
func TestReloadDrainsInflight(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	st := s.acquireState() // a query in flight on epoch 1

	done := make(chan int64, 1)
	go func() { done <- s.Reload() }()

	// Wait for the swap: new queries land on epoch 2 while the reload
	// blocks in its drain wait.
	deadline := time.Now().Add(5 * time.Second)
	for s.Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("epoch swap never happened")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Reload returned while an old-epoch query was still in flight")
	default:
	}
	if st.epoch != 1 {
		t.Fatalf("in-flight query's state epoch = %d, want 1", st.epoch)
	}

	st.inflight.Done() // the old-epoch query finishes
	select {
	case epoch := <-done:
		if epoch != 2 {
			t.Fatalf("Reload returned epoch %d, want 2", epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Reload did not return after the last old-epoch query finished")
	}
	s.Drain() // no queries in flight: must not block
}

// TestShedUnderOverload pins the load-shedding contract: with every
// admission slot held, solver-tier requests get a counted 429 with
// Retry-After, while the estimator tier keeps answering 200.
func TestShedUnderOverload(t *testing.T) {
	s := mustServer(t, Config{Workers: 1, Backlog: -1}) // slots capacity exactly 1
	s.slots <- struct{}{}                               // occupy the only admission slot

	rec := do(t, s, "POST", "/v1/attack", `{"target": 5, "attacker": 9, "exact": true}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("exact attack under overload: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	rec = do(t, s, "POST", "/v1/vulnerability", `{"target": 5}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("vulnerability under overload: status %d, want 429", rec.Code)
	}

	// The estimator tier bypasses the worker pool: still 200.
	rec = do(t, s, "POST", "/v1/attack", `{"target": 5, "attacker": 9}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate under overload: status %d, want 200", rec.Code)
	}
	var est AttackResponse
	decodeInto(t, rec, &est)
	if est.Path != "estimate" || est.Pollution != nil {
		t.Fatalf("estimate answer path=%q pollution=%v", est.Path, est.Pollution)
	}

	var m metricsSnapshot
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	if m.Endpoints["attack"].Shed != 1 || m.Endpoints["vulnerability"].Shed != 1 {
		t.Fatalf("shed counters attack=%d vulnerability=%d, want 1/1",
			m.Endpoints["attack"].Shed, m.Endpoints["vulnerability"].Shed)
	}
	if m.Endpoints["attack"].Served != 1 {
		t.Fatalf("estimate not counted as served: %d", m.Endpoints["attack"].Served)
	}

	<-s.slots // overload over; the solver tier recovers
	rec = do(t, s, "POST", "/v1/attack", `{"target": 5, "attacker": 9, "exact": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("attack after recovery: status %d", rec.Code)
	}
}

func TestMetricsCountSolvePaths(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	// Exact query builds the snapshot and answers via delta (or full
	// fallback — either way it is counted once).
	if rec := do(t, s, "POST", "/v1/attack", `{"target": 5, "attacker": 9, "exact": true}`); rec.Code != http.StatusOK {
		t.Fatalf("attack status %d: %s", rec.Code, rec.Body.String())
	}
	var m metricsSnapshot
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	if m.Solves.Delta+m.Solves.Full != 1 {
		t.Fatalf("solve counters delta=%d full=%d, want exactly one solve", m.Solves.Delta, m.Solves.Full)
	}
	if m.Solves.Estimates != 1 {
		t.Fatalf("estimates = %d, want 1 (every attack answer carries one)", m.Solves.Estimates)
	}
	if m.Endpoints["attack"].Served != 1 || m.Endpoints["attack"].Observed != 1 {
		t.Fatalf("attack endpoint served=%d observed=%d", m.Endpoints["attack"].Served, m.Endpoints["attack"].Observed)
	}
	if m.Inflight != 0 {
		t.Fatalf("inflight gauge = %d after quiesce", m.Inflight)
	}
}

func TestBadRequests(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	n := serverWorld(t).Policy.N()
	cases := []struct {
		name, path, body string
		wantErr          string
	}{
		{"bad kind", "/v1/attack", `{"target": 1, "attacker": 2, "kind": "teleport"}`, "attack scenario"},
		{"target range", "/v1/attack", `{"target": 999999, "attacker": 2}`, "out of range"},
		{"self attack", "/v1/attack", `{"target": 3, "attacker": 3}`, "differ"},
		{"unknown field", "/v1/attack", `{"target": 1, "attacker": 2, "bogus": true}`, "bogus"},
		{"defense range", "/v1/attack", `{"target": 1, "attacker": 2, "defense": {"rov": [-4]}}`, "defense.rov"},
		{"leak subprefix", "/v1/vulnerability", `{"target": 1, "kind": "route-leak", "sub_prefix": true}`, "sub-prefix"},
		{"attacker range", "/v1/vulnerability", `{"target": 1, "attackers": [5, 700000]}`, "out of range"},
		{"no strategies", "/v1/deployment", `{"target": 1}`, "at least one strategy"},
		{"two forms", "/v1/deployment", `{"target": 1, "strategies": [{"tier1": true, "top_degree": 5}]}`, "exactly one"},
		{"bad mechs", "/v1/deployment", `{"target": 1, "mechs": "magic", "strategies": [{"tier1": true}]}`, "mechanism"},
		{"no probes", "/v1/detection", `{"attacks": [{"target": 1, "attacker": 2}]}`, "at least one probe set"},
		{"empty probe set", "/v1/detection", `{"probes": [{"name": "x", "probes": []}], "attacks": [{"target": 1, "attacker": 2}]}`, "empty"},
		{"bad semantics", "/v1/detection", `{"semantics": "psychic", "probes": [{"name": "x", "probes": [1]}], "attacks": [{"target": 1, "attacker": 2}]}`, "semantics"},
		{"bad attack pair", "/v1/detection", `{"probes": [{"name": "x", "probes": [1]}], "attacks": [{"target": 2, "attacker": 2}]}`, "bad"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, "POST", tc.path, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			decodeInto(t, rec, &e)
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
	var m metricsSnapshot
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	var errs int64
	for _, ep := range m.Endpoints {
		errs += ep.Errors
	}
	if errs != int64(len(cases)) {
		t.Fatalf("error counter total = %d, want %d", errs, len(cases))
	}
	if n := s.world.Policy.N(); n != serverWorld(t).Policy.N() {
		t.Fatalf("world mutated: n=%d", n)
	}
	_ = n
}

// TestSnapshotCacheEviction pins the FIFO bound: the cache never holds
// more than SnapshotCap entries, and evicted targets rebuild on return.
func TestSnapshotCacheEviction(t *testing.T) {
	s := mustServer(t, Config{Workers: 1, SnapshotCap: 2})
	for _, target := range []int{1, 2, 3, 1} {
		body := `{"target": ` + string(rune('0'+target)) + `, "attacker": 9, "exact": true}`
		if rec := do(t, s, "POST", "/v1/attack", body); rec.Code != http.StatusOK {
			t.Fatalf("target %d: status %d", target, rec.Code)
		}
	}
	var m metricsSnapshot
	decodeInto(t, do(t, s, "GET", "/metrics", ""), &m)
	if m.Snapshots.Cached != 2 {
		t.Fatalf("cached = %d, want cap 2", m.Snapshots.Cached)
	}
	// Four queries, four distinct builds: target 1 was evicted by 3 and
	// rebuilt on its second visit.
	if m.Snapshots.Builds != 4 {
		t.Fatalf("builds = %d, want 4 (eviction forces a rebuild)", m.Snapshots.Builds)
	}
}

// TestEstimatorTracksExact pins the cheap tier's usefulness: over a
// random attack sample, the estimator's weight-fraction ranking must
// correlate with the exact solver's (Spearman ρ — the estimator is a
// triage tier, so rank order is what matters).
func TestEstimatorTracksExact(t *testing.T) {
	w := serverWorld(t)
	s := mustServer(t, Config{Workers: 1})
	n := w.Policy.N()
	rng := rand.New(rand.NewSource(17))
	var est, exact []float64
	for len(est) < 120 {
		target, attacker := rng.Intn(n), rng.Intn(n)
		if target == attacker {
			continue
		}
		at := core.Attack{Target: target, Attacker: attacker, Kind: core.KindOrigin}
		e := s.est.estimate(at)
		o, err := core.NewSolver(w.Policy).SolveDefense(at, core.Defense{})
		if err != nil {
			t.Fatal(err)
		}
		rec := hijack.Measure(w.Graph, w.Graph.TotalAddrWeight(), o)
		est = append(est, e.WeightFrac)
		exact = append(exact, rec.WeightFrac)
	}
	rho, err := stats.Spearman(est, exact)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.5 {
		t.Fatalf("estimator Spearman ρ = %.3f vs exact, want ≥ 0.5", rho)
	}
	t.Logf("estimator vs exact: Spearman ρ = %.3f over %d attacks", rho, len(est))
}

// TestEstimateOrdering spot-checks estimator semantics: sub-prefix
// saturates, and a route leak is damped below the same node's origin
// hijack.
func TestEstimateOrdering(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	n := s.world.Policy.N()
	at := core.Attack{Target: 3, Attacker: 40, Kind: core.KindOrigin}
	origin := s.est.estimate(at)

	at.SubPrefix = true
	sub := s.est.estimate(at)
	if sub.Pollution != n-2 || sub.WeightFrac != 1 {
		t.Fatalf("sub-prefix estimate = %+v, want saturation", sub)
	}

	at.SubPrefix = false
	at.Kind = core.KindRouteLeak
	leak := s.est.estimate(at)
	if leak.WeightFrac >= origin.WeightFrac && origin.WeightFrac > 0 {
		t.Fatalf("leak estimate %.4f not damped below origin %.4f", leak.WeightFrac, origin.WeightFrac)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a World must fail")
	}
	s := mustServer(t, Config{}) // all defaults
	if s.workers <= 0 || cap(s.slots) != 3*s.workers || cap(s.pool) != s.workers {
		t.Fatalf("defaults: workers=%d slots=%d pool=%d", s.workers, cap(s.slots), cap(s.pool))
	}
}
