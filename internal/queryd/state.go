package queryd

import (
	"sync"

	"github.com/bgpsim/bgpsim/internal/core"
)

// epochState is one snapshot epoch: a bounded baseline cache plus the
// in-flight count that gates its release. Queries register on exactly
// one epoch for their whole lifetime; a reload swaps the state pointer
// and waits for the old epoch's group to drain before letting the old
// cache go.
type epochState struct {
	epoch    int64
	inflight sync.WaitGroup

	mu    sync.Mutex
	cap   int
	snaps map[int]*snapEntry
	order []int // insertion order, for FIFO eviction
}

// snapEntry is one target's cached baseline. The once gate makes
// concurrent first requests for a target build it exactly once; the
// losers wait for the builder instead of solving redundantly.
type snapEntry struct {
	once sync.Once
	snap *core.Snapshot
	err  error
}

func newEpochState(epoch int64, cap int) *epochState {
	return &epochState{epoch: epoch, cap: cap, snaps: make(map[int]*snapEntry, cap)}
}

// lookup returns target's cache entry. hit reports whether the entry
// already existed. With insert=false a missing target returns (nil,
// false) instead of creating an entry. Insertion beyond the cache cap
// evicts the oldest entry — queries already holding an evicted entry
// keep using it; eviction only drops the cache's reference.
func (st *epochState) lookup(target int, insert bool) (e *snapEntry, hit bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.snaps[target]; ok {
		return e, true
	}
	if !insert {
		return nil, false
	}
	for len(st.snaps) >= st.cap && len(st.order) > 0 {
		delete(st.snaps, st.order[0])
		st.order = st.order[1:]
	}
	e = &snapEntry{}
	st.snaps[target] = e
	st.order = append(st.order, target)
	return e, false
}

// cached returns the number of cached baselines.
func (st *epochState) cached() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.snaps)
}
