package queryd

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bgpsim/bgpsim/internal/experiments"
)

// benchWorld is the serving benchmark fixture: the same scale and seed
// as the core delta benchmarks, so BENCH_hijackd.json and
// BENCH_core.json describe one workload.
var (
	benchWorldOnce sync.Once
	benchWorldVal  *experiments.World
	benchWorldErr  error
)

func benchWorld(b *testing.B) *experiments.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorldVal, benchWorldErr = experiments.NewWorld(2000, 42)
	})
	if benchWorldErr != nil {
		b.Fatal(benchWorldErr)
	}
	return benchWorldVal
}

// benchAttackBody renders the i-th query: one fixed target, rotating
// attackers, ROV deployed at a top-degree ladder rung — the defended
// point-query shape hijackd exists for.
func benchAttackBody(n, i int) []byte {
	target := n / 7
	attacker := (i*31 + 1) % n
	if attacker == target {
		attacker = (attacker + 1) % n
	}
	return []byte(fmt.Sprintf(
		`{"target": %d, "attacker": %d, "exact": true, "defense": {"rov": [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19]}}`,
		target, attacker))
}

// BenchmarkAttackQuery measures the exact tier end to end — HTTP
// decode, admission, snapshot lookup, delta solve, measurement, JSON
// encode — and reports the server's own latency quantiles alongside
// ns/op (bench_json.sh derives queries/s from ns/op).
func BenchmarkAttackQuery(b *testing.B) {
	w := benchWorld(b)
	s, err := New(Config{World: w, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	n := w.Policy.N()
	// Warm the snapshot once so the steady state is measured.
	warm := httptest.NewRequest("POST", "/v1/attack", bytes.NewReader(benchAttackBody(n, 0)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm query: status %d: %s", rec.Code, rec.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/attack", bytes.NewReader(benchAttackBody(n, i)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("query %d: status %d", i, rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.met.attack.lat.quantile(0.50)), "p50_ns")
	b.ReportMetric(float64(s.met.attack.lat.quantile(0.99)), "p99_ns")
}

// BenchmarkOverloadShed drives a Workers=1, no-backlog server from
// parallel clients so admission overflows, and reports how much of the
// offered load was shed as counted 429s versus served. Correctness
// under overload — not throughput — is the number that matters here.
func BenchmarkOverloadShed(b *testing.B) {
	w := benchWorld(b)
	s, err := New(Config{World: w, Workers: 1, Backlog: -1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	n := w.Policy.N()
	var idx, served, shed atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(idx.Add(1))
			req := httptest.NewRequest("POST", "/v1/attack", bytes.NewReader(benchAttackBody(n, i)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				b.Errorf("query %d: status %d", i, rec.Code)
			}
		}
	})
	b.StopTimer()
	total := served.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(shed.Load())/float64(total), "shed_frac")
	}
	b.ReportMetric(float64(shed.Load()), "shed_total")
}
