package queryd_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/queryd"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// testWorld builds the shared fixture world once: equivalence runs many
// batch sweeps against it, and world construction dominates otherwise.
var (
	worldOnce sync.Once
	worldVal  *experiments.World
	worldErr  error
)

func testWorld(t testing.TB) *experiments.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = experiments.NewWorld(300, 9)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldVal
}

func newTestServer(t testing.TB, cfg queryd.Config) *queryd.Server {
	t.Helper()
	if cfg.World == nil {
		cfg.World = testWorld(t)
	}
	s, err := queryd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postJSON round-trips one request through the full HTTP surface and
// decodes the response body into out (when the status is 200).
func postJSON(t testing.TB, h http.Handler, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK && out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

func getJSON(t testing.TB, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK && out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return rec
}

// digest canonicalizes any value through JSON and hashes it — float64
// survives the round trip exactly (shortest-exact printing), so two
// digests match iff the measurements are bit-identical.
func digest(t testing.TB, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// sampleAttackers returns a deterministic attacker subset, so the
// matrix stays small enough to sweep per (kind × defense × workers).
func sampleAttackers(n, k, stride int) []int {
	out := make([]int, 0, k)
	for i := 0; len(out) < k; i += stride {
		out = append(out, i%n)
	}
	return out
}

// TestVulnerabilityMatchesBatch pins /v1/vulnerability against
// hijack.SweepAll for every attack kind, defended and not, with the
// batch side run at workers 1 and 8.
func TestVulnerabilityMatchesBatch(t *testing.T) {
	w := testWorld(t)
	n := w.Policy.N()
	target := n / 3
	attackers := sampleAttackers(n, 40, 7)
	rov := []int{1, 5, 9, 20, 33, 47, 60}
	set := asn.NewIndexSet(n)
	for _, i := range rov {
		set.Add(i)
	}

	for _, serverWorkers := range []int{1, 8} {
		srv := newTestServer(t, queryd.Config{Workers: serverWorkers})
		h := srv.Handler()
		for _, kind := range core.Kinds() {
			for _, defended := range []bool{false, true} {
				name := fmt.Sprintf("sw%d/%s/def=%v", serverWorkers, kind, defended)
				t.Run(name, func(t *testing.T) {
					cfg := hijack.SweepConfig{Target: target, Attackers: attackers, Kind: kind}
					req := queryd.VulnerabilityRequest{Target: target, Attackers: attackers, Kind: kind.String()}
					if defended {
						cfg.Defense = core.Defense{Blocked: set, ASPA: set, Peerlock: true}
						req.Defense = queryd.DefenseSpec{ROV: rov, ASPA: rov, Peerlock: true}
					}
					var got queryd.VulnerabilityResponse
					if rec := postJSON(t, h, "/v1/vulnerability", req, &got); rec.Code != http.StatusOK {
						t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
					}
					for _, batchWorkers := range []int{1, 8} {
						res, err := hijack.SweepAll(w.Policy, []hijack.SweepConfig{cfg}, sweep.Options{Workers: batchWorkers})
						if err != nil {
							t.Fatal(err)
						}
						want := res[0]
						wantDig := digest(t, struct {
							A []int
							P []int
							W []float64
						}{want.Attackers, want.Pollution, want.WeightFrac})
						gotDig := digest(t, struct {
							A []int
							P []int
							W []float64
						}{got.Attackers, got.Pollution, got.WeightFrac})
						if wantDig != gotDig {
							t.Fatalf("batch workers=%d digest mismatch:\nbatch %s\nquery %s", batchWorkers, wantDig, gotDig)
						}
					}
				})
			}
		}
	}
}

// TestDeploymentMatchesBatch pins /v1/deployment against
// deploy.Evaluate over a mixed strategy ladder.
func TestDeploymentMatchesBatch(t *testing.T) {
	w := testWorld(t)
	n := w.Policy.N()
	target := 4
	attackers := sampleAttackers(n, 30, 11)
	custom := []int{2, 8, 14, 77, 120}
	strategies := []deploy.Strategy{
		deploy.None(),
		deploy.Tier1(w.Class),
		deploy.TopDegree(w.Graph, 12),
		deploy.Custom("custom", custom),
	}
	specs := []queryd.StrategySpec{
		{Baseline: true},
		{Tier1: true},
		{TopDegree: 12},
		{Nodes: custom, Name: "custom"},
	}

	srv := newTestServer(t, queryd.Config{Workers: 2})
	var got queryd.DeploymentResponse
	req := queryd.DeploymentRequest{Target: target, Attackers: attackers, Strategies: specs}
	if rec := postJSON(t, srv.Handler(), "/v1/deployment", req, &got); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Strategies) != len(strategies) {
		t.Fatalf("got %d strategy results, want %d", len(got.Strategies), len(strategies))
	}
	for _, batchWorkers := range []int{1, 8} {
		evals, err := deploy.Evaluate(w.Policy, target, attackers, strategies, batchWorkers)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range evals {
			wantDig := digest(t, struct {
				P []int
				W []float64
			}{ev.Result.Pollution, ev.Result.WeightFrac})
			gotDig := digest(t, struct {
				P []int
				W []float64
			}{got.Strategies[i].Pollution, got.Strategies[i].WeightFrac})
			if wantDig != gotDig {
				t.Fatalf("workers=%d rung %q: digest mismatch", batchWorkers, ev.Strategy.Name)
			}
			if got.Strategies[i].Name != ev.Strategy.Name {
				t.Fatalf("rung %d name %q, want %q", i, got.Strategies[i].Name, ev.Strategy.Name)
			}
		}
	}
}

// TestDetectionMatchesBatch pins /v1/detection against
// detect.EvaluateAll across semantics, kinds and a deployed defense.
func TestDetectionMatchesBatch(t *testing.T) {
	w := testWorld(t)
	n := w.Policy.N()
	pool := w.Graph.TransitNodes()
	rng := rand.New(rand.NewSource(41))
	sets := []detect.ProbeSet{
		detect.Tier1Probes(w.Class),
		detect.TopDegreeProbes(w.Graph, 8),
		detect.CustomProbes("pair", []int{3, 200}),
	}
	rovNodes := []int{0, 7, 31, 90}
	rov := asn.NewIndexSet(n)
	for _, i := range rovNodes {
		rov.Add(i)
	}

	srv := newTestServer(t, queryd.Config{Workers: 4, SnapshotCap: 8})
	h := srv.Handler()
	for _, kind := range core.Kinds() {
		attacks, err := detect.GenerateAttacksOfKind(pool, 60, kind, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, semName := range []string{"selected", "any-received"} {
			t.Run(fmt.Sprintf("%s/%s", kind, semName), func(t *testing.T) {
				sem := detect.SelectedRoute
				if semName != "selected" {
					sem = detect.AnyReceived
				}
				req := queryd.DetectionRequest{
					Kind:      kind.String(),
					Semantics: semName,
					Defense:   queryd.DefenseSpec{ROV: rovNodes},
				}
				for _, ps := range sets {
					req.Probes = append(req.Probes, queryd.ProbeSetSpec{Name: ps.Name, Probes: ps.Probes})
				}
				for _, at := range attacks {
					req.Attacks = append(req.Attacks, queryd.DetectionAttack{Target: at.Target, Attacker: at.Attacker})
				}
				var got queryd.DetectionResponse
				if rec := postJSON(t, h, "/v1/detection", req, &got); rec.Code != http.StatusOK {
					t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
				for _, batchWorkers := range []int{1, 8} {
					res, err := detect.EvaluateAll(w.Policy, sets, attacks, sem, core.Defense{Blocked: rov}, batchWorkers)
					if err != nil {
						t.Fatal(err)
					}
					for j, want := range res {
						g := got.Results[j]
						misses := make([]queryd.DetectionMiss, 0, len(want.Misses))
						for _, m := range want.Misses {
							misses = append(misses, queryd.DetectionMiss{Attacker: m.Attacker, Target: m.Target, Pollution: m.Pollution})
						}
						wantDig := digest(t, struct {
							H []int
							M []float64
							X []queryd.DetectionMiss
						}{want.TriggerHist, want.MeanPollutionByTriggers, misses})
						gotDig := digest(t, struct {
							H []int
							M []float64
							X []queryd.DetectionMiss
						}{g.TriggerHist, g.MeanPollutionByTriggers, g.Misses})
						if wantDig != gotDig {
							t.Fatalf("workers=%d set %q: digest mismatch", batchWorkers, want.ProbeSet.Name)
						}
					}
				}
			})
		}
	}
}

// TestAttackMatchesDirectSolve pins the exact tier of /v1/attack
// against a direct solver run, sub-prefix (full-solve fallback)
// included.
func TestAttackMatchesDirectSolve(t *testing.T) {
	w := testWorld(t)
	n := w.Policy.N()
	srv := newTestServer(t, queryd.Config{Workers: 2})
	h := srv.Handler()
	solver := core.NewSolver(w.Policy)
	total := w.Graph.TotalAddrWeight()
	for _, tc := range []struct {
		kind      core.AttackKind
		subPrefix bool
	}{
		{core.KindOrigin, false},
		{core.KindOrigin, true},
		{core.KindForgedOrigin, false},
		{core.KindRouteLeak, false},
	} {
		at := core.Attack{Target: 10, Attacker: n - 3, Kind: tc.kind, SubPrefix: tc.subPrefix}
		o, err := solver.SolveDefense(at, core.Defense{})
		if err != nil {
			t.Fatal(err)
		}
		want := hijack.Measure(w.Graph, total, o)
		var got queryd.AttackResponse
		req := queryd.AttackRequest{Target: at.Target, Attacker: at.Attacker, Kind: tc.kind.String(), SubPrefix: tc.subPrefix, Exact: true}
		if rec := postJSON(t, h, "/v1/attack", req, &got); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if got.Pollution == nil || *got.Pollution != want.Pollution {
			t.Fatalf("%s sub=%v: pollution %v, want %d", tc.kind, tc.subPrefix, got.Pollution, want.Pollution)
		}
		if got.WeightFrac == nil || *got.WeightFrac != want.WeightFrac {
			t.Fatalf("%s sub=%v: weight frac %v, want %v", tc.kind, tc.subPrefix, got.WeightFrac, want.WeightFrac)
		}
		if got.Path != "delta" && got.Path != "full" {
			t.Fatalf("exact answer path %q", got.Path)
		}
		if tc.subPrefix && got.Path != "full" {
			t.Fatalf("sub-prefix attack answered via %q, want full", got.Path)
		}
	}
}
