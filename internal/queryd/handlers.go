package queryd

import (
	"net/http"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/hijack"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/attack", s.handleAttack)
	s.mux.HandleFunc("POST /v1/vulnerability", s.query("vulnerability", s.vulnerabilityQuery))
	s.mux.HandleFunc("POST /v1/deployment", s.query("deployment", s.deploymentQuery))
	s.mux.HandleFunc("POST /v1/detection", s.query("detection", s.detectionQuery))
}

// query wraps a solver-tier endpoint with the serving machinery:
// bounded admission (shed with 429 + Retry-After when full), epoch
// registration, latency observation and JSON rendering.
func (s *Server) query(name string, fn func(st *epochState, wk *worker, r *http.Request) (any, error)) http.HandlerFunc {
	ep := s.met.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		wk, ok := s.admit()
		if !ok {
			ep.shed.Add(1)
			s.shedResponse(w)
			return
		}
		defer s.release(wk)
		st := s.acquireState()
		defer st.inflight.Done()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		start := s.clock.Now()
		resp, err := fn(st, wk, r)
		if err != nil {
			ep.errs.Add(1)
			code := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				code = ae.code
			}
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		ep.lat.observe(s.clock.Now().Sub(start).Nanoseconds())
		ep.served.Add(1)
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server overloaded, retry later"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"epoch":     s.Epoch(),
		"uptime_ns": s.clock.Now().Sub(s.started).Nanoseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// handleReload installs a fresh snapshot epoch. It deliberately does
// NOT register on the current epoch: the reload waits for old-epoch
// queries to drain, and registering would deadlock it against itself.
func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	epoch := s.Reload()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch})
}

// handleAttack is the two-tier what-if endpoint. The estimator tier is
// O(1) and bypasses the worker pool entirely, so cheap answers survive
// overload; only "exact": true competes for a solver.
func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	ep := &s.met.attack
	var req AttackRequest
	if err := decodeBody(r, &req); err != nil {
		ep.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	n := s.world.Policy.N()
	kind, err := core.ParseAttackKind(req.Kind)
	if err != nil {
		ep.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Target < 0 || req.Target >= n || req.Attacker < 0 || req.Attacker >= n {
		ep.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "target or attacker out of range"})
		return
	}
	if req.Target == req.Attacker {
		ep.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "attacker must differ from target"})
		return
	}
	def, err := req.Defense.resolve(n)
	if err != nil {
		ep.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	at := core.Attack{Target: req.Target, Attacker: req.Attacker, Kind: kind, SubPrefix: req.SubPrefix}
	resp := AttackResponse{
		Target:   req.Target,
		Attacker: req.Attacker,
		Kind:     kind.String(),
		Exact:    req.Exact,
		Estimate: s.est.estimate(at),
		Path:     "estimate",
	}
	s.met.estimates.Add(1)

	if !req.Exact {
		start := s.clock.Now()
		st := s.acquireState()
		resp.Epoch = st.epoch
		st.inflight.Done()
		ep.lat.observe(s.clock.Now().Sub(start).Nanoseconds())
		ep.served.Add(1)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	wk, ok := s.admit()
	if !ok {
		ep.shed.Add(1)
		s.shedResponse(w)
		return
	}
	defer s.release(wk)
	st := s.acquireState()
	defer st.inflight.Done()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	start := s.clock.Now()
	resp.Epoch = st.epoch
	snap, err := s.snapshotFor(st, wk, req.Target, true)
	if err == nil {
		var o core.OutcomeView
		o, err = wk.solveCell(s, snap, at, def)
		if err == nil {
			rec := hijack.Measure(s.world.Graph, s.totalWeight, o)
			resp.Pollution = &rec.Pollution
			resp.WeightFrac = &rec.WeightFrac
			resp.Path = "full"
			if d, ok := o.(*core.DeltaOutcome); ok && d.UsedDelta() {
				resp.Path = "delta"
			}
		}
	}
	if err != nil {
		ep.errs.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	ep.lat.observe(s.clock.Now().Sub(start).Nanoseconds())
	ep.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// attackerPopulation resolves a request's attacker list (all ASes when
// empty), dropping the target exactly as the batch workload builder
// does.
func (s *Server) attackerPopulation(target int, attackers []int) ([]int, error) {
	n := s.world.Policy.N()
	if len(attackers) == 0 {
		attackers = hijack.AllNodes(n)
	}
	out := make([]int, 0, len(attackers))
	for _, a := range attackers {
		if a == target {
			continue
		}
		if a < 0 || a >= n {
			return nil, badRequest("attacker %d out of range (n=%d)", a, n)
		}
		out = append(out, a)
	}
	return out, nil
}

func (s *Server) vulnerabilityQuery(st *epochState, wk *worker, r *http.Request) (any, error) {
	var req VulnerabilityRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	n := s.world.Policy.N()
	kind, err := core.ParseAttackKind(req.Kind)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if kind == core.KindRouteLeak && req.SubPrefix {
		return nil, badRequest("a route leak re-announces the real prefix; sub-prefix route leaks are invalid")
	}
	if req.Target < 0 || req.Target >= n {
		return nil, badRequest("target %d out of range (n=%d)", req.Target, n)
	}
	def, err := req.Defense.resolve(n)
	if err != nil {
		return nil, err
	}
	attackers, err := s.attackerPopulation(req.Target, req.Attackers)
	if err != nil {
		return nil, err
	}
	snap, err := s.snapshotFor(st, wk, req.Target, true)
	if err != nil {
		return nil, err
	}
	resp := &VulnerabilityResponse{
		Epoch:      st.epoch,
		Target:     req.Target,
		Kind:       kind.String(),
		Attackers:  attackers,
		Pollution:  make([]int, 0, len(attackers)),
		WeightFrac: make([]float64, 0, len(attackers)),
	}
	for _, a := range attackers {
		at := core.Attack{Target: req.Target, Attacker: a, Kind: kind, SubPrefix: req.SubPrefix}
		o, err := wk.solveCell(s, snap, at, def)
		if err != nil {
			return nil, err
		}
		rec := hijack.Measure(s.world.Graph, s.totalWeight, o)
		resp.Pollution = append(resp.Pollution, rec.Pollution)
		resp.WeightFrac = append(resp.WeightFrac, rec.WeightFrac)
	}
	return resp, nil
}

func (s *Server) deploymentQuery(st *epochState, wk *worker, r *http.Request) (any, error) {
	var req DeploymentRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	n := s.world.Policy.N()
	kind, err := core.ParseAttackKind(req.Kind)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	mechStr := req.Mechs
	if mechStr == "" {
		mechStr = "rov"
	}
	mechs, err := core.ParseDefenseMech(mechStr)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if req.Target < 0 || req.Target >= n {
		return nil, badRequest("target %d out of range (n=%d)", req.Target, n)
	}
	if len(req.Strategies) == 0 {
		return nil, badRequest("deployment query needs at least one strategy")
	}
	attackers, err := s.attackerPopulation(req.Target, req.Attackers)
	if err != nil {
		return nil, err
	}
	// One baseline serves the whole ladder: the snapshot is
	// defense-independent, so every rung's delta runs against it.
	snap, err := s.snapshotFor(st, wk, req.Target, true)
	if err != nil {
		return nil, err
	}
	resp := &DeploymentResponse{
		Epoch:     st.epoch,
		Target:    req.Target,
		Kind:      kind.String(),
		Mechs:     mechs.String(),
		Attackers: attackers,
	}
	for _, spec := range req.Strategies {
		strat, err := spec.resolve(s.world.Graph, s.world.Class)
		if err != nil {
			return nil, err
		}
		def := strat.Defense(n, mechs)
		sr := StrategyResult{
			Name:       strat.Name,
			Deployed:   len(strat.Nodes),
			Pollution:  make([]int, 0, len(attackers)),
			WeightFrac: make([]float64, 0, len(attackers)),
		}
		for _, a := range attackers {
			at := core.Attack{Target: req.Target, Attacker: a, Kind: kind}
			o, err := wk.solveCell(s, snap, at, def)
			if err != nil {
				return nil, err
			}
			rec := hijack.Measure(s.world.Graph, s.totalWeight, o)
			sr.Pollution = append(sr.Pollution, rec.Pollution)
			sr.WeightFrac = append(sr.WeightFrac, rec.WeightFrac)
		}
		resp.Strategies = append(resp.Strategies, sr)
	}
	return resp, nil
}

func (s *Server) detectionQuery(st *epochState, wk *worker, r *http.Request) (any, error) {
	var req DetectionRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	n := s.world.Policy.N()
	kind, err := core.ParseAttackKind(req.Kind)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	sem, err := parseSemantics(req.Semantics)
	if err != nil {
		return nil, err
	}
	def, err := req.Defense.resolve(n)
	if err != nil {
		return nil, err
	}
	if len(req.Probes) == 0 {
		return nil, badRequest("detection query needs at least one probe set")
	}
	sets := make([]detect.ProbeSet, len(req.Probes))
	for i, ps := range req.Probes {
		if len(ps.Probes) == 0 {
			return nil, badRequest("probe set %q is empty", ps.Name)
		}
		for _, p := range ps.Probes {
			if p < 0 || p >= n {
				return nil, badRequest("probe set %q: probe %d out of range (n=%d)", ps.Name, p, n)
			}
		}
		sets[i] = detect.CustomProbes(ps.Name, ps.Probes)
	}
	attacks := make([]core.Attack, len(req.Attacks))
	for i, a := range req.Attacks {
		if a.Target < 0 || a.Target >= n || a.Attacker < 0 || a.Attacker >= n || a.Target == a.Attacker {
			return nil, badRequest("attack %d: bad (target=%d, attacker=%d)", i, a.Target, a.Attacker)
		}
		attacks[i] = core.Attack{Target: a.Target, Attacker: a.Attacker, Kind: kind}
	}
	// Reuse the batch reducers verbatim so histograms, bucket means and
	// miss lists assemble exactly as detectscan's do. Detection targets
	// scatter, so the snapshot cache is consulted read-only: a hit rides
	// the delta path, a miss answers with a full solve without evicting
	// the point-query entries.
	out, red := detect.Results(sets, attacks)
	for i, at := range attacks {
		snap, err := s.snapshotFor(st, wk, at.Target, false)
		if err != nil {
			return nil, err
		}
		o, err := wk.solveCell(s, snap, at, def)
		if err != nil {
			return nil, err
		}
		red.Emit(i, detect.MeasureRecord(s.world.Policy, sets, sem, o))
	}
	red.Finish()
	resp := &DetectionResponse{Epoch: st.epoch, Kind: kind.String()}
	for _, res := range out {
		dr := DetectionResult{
			Name:                    res.ProbeSet.Name,
			TriggerHist:             res.TriggerHist,
			MeanPollutionByTriggers: res.MeanPollutionByTriggers,
			Misses:                  make([]DetectionMiss, 0, len(res.Misses)),
			TotalAttacks:            res.TotalAttacks,
			MissRate:                res.MissRate(),
		}
		for _, m := range res.Misses {
			dr.Misses = append(dr.Misses, DetectionMiss{Attacker: m.Attacker, Target: m.Target, Pollution: m.Pollution})
		}
		resp.Results = append(resp.Results, dr)
	}
	return resp, nil
}
