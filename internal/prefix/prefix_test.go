package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in   string
		addr uint32
		len  uint8
	}{
		{"0.0.0.0/0", 0, 0},
		{"10.0.0.0/8", 10 << 24, 8},
		{"129.82.0.0/16", 129<<24 | 82<<16, 16},
		{"192.168.4.0/24", 192<<24 | 168<<16 | 4<<8, 24},
		{"255.255.255.255/32", ^uint32(0), 32},
		{"128.0.0.0/1", 128 << 24, 1},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", tt.in, err)
			continue
		}
		if got.Addr != tt.addr || got.Len != tt.len {
			t.Errorf("Parse(%q) = %v/%d, want %v/%d", tt.in, got.Addr, got.Len, tt.addr, tt.len)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0/8",
		"10.0.0.0.0/8", "256.0.0.0/8", "10.0.0.1/8", "a.b.c.d/8",
		"10..0.0/8", "10.0.0.0/x",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(addr uint32, length uint8) bool {
		p := New(addr, length%33)
		back, err := Parse(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(32) != ^uint32(0) {
		t.Error("Mask(32) != all-ones")
	}
	if Mask(8) != 0xff000000 {
		t.Errorf("Mask(8) = %#x", Mask(8))
	}
	if Mask(40) != ^uint32(0) {
		t.Error("Mask clamping failed")
	}
}

func TestCoversAndSubprefix(t *testing.T) {
	super := MustParse("10.0.0.0/8")
	sub := MustParse("10.1.0.0/16")
	other := MustParse("11.0.0.0/8")

	if !super.Covers(sub) {
		t.Error("10/8 should cover 10.1/16")
	}
	if sub.Covers(super) {
		t.Error("10.1/16 must not cover 10/8")
	}
	if !super.Covers(super) {
		t.Error("a prefix covers itself")
	}
	if super.Covers(other) {
		t.Error("10/8 must not cover 11/8")
	}
	if !sub.IsSubprefixOf(super) {
		t.Error("10.1/16 is a subprefix of 10/8")
	}
	if super.IsSubprefixOf(super) {
		t.Error("IsSubprefixOf must be strict")
	}
	if !super.Overlaps(sub) || !sub.Overlaps(super) {
		t.Error("Overlaps should be symmetric for nested prefixes")
	}
	if super.Overlaps(other) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestContains(t *testing.T) {
	p := MustParse("129.82.0.0/16")
	if !p.Contains(129<<24 | 82<<16 | 1<<8 | 1) {
		t.Error("129.82.1.1 should be inside 129.82/16")
	}
	if p.Contains(129<<24 | 83<<16) {
		t.Error("129.83.0.0 should be outside 129.82/16")
	}
}

func TestSize(t *testing.T) {
	if got := MustParse("10.0.0.0/8").Size(); got != 1<<24 {
		t.Errorf("/8 Size = %d", got)
	}
	if got := MustParse("1.2.3.4/32").Size(); got != 1 {
		t.Errorf("/32 Size = %d", got)
	}
	if got := MustParse("0.0.0.0/0").Size(); got != 1<<32 {
		t.Errorf("/0 Size = %d", got)
	}
}

func TestCoversTransitivity(t *testing.T) {
	f := func(addr uint32, a, b, c uint8) bool {
		la, lb, lc := a%33, b%33, c%33
		if la > lb {
			la, lb = lb, la
		}
		if lb > lc {
			lb, lc = lc, lb
		}
		if la > lb {
			la, lb = lb, la
		}
		// Nested prefixes derived from one address: shorter covers longer.
		p, q, r := New(addr, la), New(addr, lb), New(addr, lc)
		return p.Covers(q) && q.Covers(r) && p.Covers(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrieExactAndLongest(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParse("10.0.0.0/8"), "eight")
	tr.Insert(MustParse("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParse("0.0.0.0/0"), "default")

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Exact(MustParse("10.1.0.0/16")); !ok || v != "sixteen" {
		t.Errorf("Exact(10.1/16) = %q, %v", v, ok)
	}
	if _, ok := tr.Exact(MustParse("10.1.0.0/24")); ok {
		t.Error("Exact should miss unstored prefix")
	}
	v, l, ok := tr.LongestMatch(MustParse("10.1.2.0/24"))
	if !ok || v != "sixteen" || l != 16 {
		t.Errorf("LongestMatch(10.1.2/24) = %q/%d/%v", v, l, ok)
	}
	v, l, ok = tr.LongestMatch(MustParse("10.2.0.0/16"))
	if !ok || v != "eight" || l != 8 {
		t.Errorf("LongestMatch(10.2/16) = %q/%d/%v", v, l, ok)
	}
	v, l, ok = tr.LongestMatch(MustParse("11.0.0.0/8"))
	if !ok || v != "default" || l != 0 {
		t.Errorf("LongestMatch(11/8) = %q/%d/%v", v, l, ok)
	}
}

func TestTrieInsertReplace(t *testing.T) {
	var tr Trie[int]
	if !tr.Insert(MustParse("10.0.0.0/8"), 1) {
		t.Error("first Insert should report fresh")
	}
	if tr.Insert(MustParse("10.0.0.0/8"), 2) {
		t.Error("second Insert should report replace")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Exact(MustParse("10.0.0.0/8")); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestTrieRemove(t *testing.T) {
	var tr Trie[int]
	p := MustParse("10.0.0.0/8")
	tr.Insert(p, 1)
	if !tr.Remove(p) {
		t.Error("Remove should succeed")
	}
	if tr.Remove(p) {
		t.Error("second Remove should fail")
	}
	if _, ok := tr.Exact(p); ok {
		t.Error("Exact should miss after Remove")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after Remove", tr.Len())
	}
}

func TestTrieCovering(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParse("0.0.0.0/0"), "root")
	tr.Insert(MustParse("10.0.0.0/8"), "eight")
	tr.Insert(MustParse("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParse("10.1.1.0/24"), "not-covering")

	var got []string
	tr.Covering(MustParse("10.1.0.0/16"), func(_ uint8, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"root", "eight", "sixteen"}
	if len(got) != len(want) {
		t.Fatalf("Covering = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Covering = %v, want %v", got, want)
		}
	}

	// Early-exit contract.
	calls := 0
	tr.Covering(MustParse("10.1.0.0/16"), func(uint8, string) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("Covering ignored early exit, calls = %d", calls)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []Prefix{
		MustParse("10.0.0.0/8"),
		MustParse("9.0.0.0/8"),
		MustParse("10.128.0.0/9"),
		MustParse("10.0.0.0/16"),
	}
	for i, p := range ps {
		tr.Insert(p, i)
	}
	var walked []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		walked = append(walked, p)
		return true
	})
	if len(walked) != len(ps) {
		t.Fatalf("Walk visited %d, want %d", len(walked), len(ps))
	}
	for i := 1; i < len(walked); i++ {
		a, b := walked[i-1], walked[i]
		if a.Addr > b.Addr || (a.Addr == b.Addr && a.Len > b.Len) {
			t.Fatalf("Walk order violated: %v before %v", a, b)
		}
	}
}

// TestTrieLongestMatchModel cross-checks LongestMatch against a brute-force
// scan over the stored set on random inputs.
func TestTrieLongestMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tr Trie[int]
	var stored []Prefix
	for i := 0; i < 300; i++ {
		p := New(rng.Uint32(), uint8(rng.Intn(33)))
		if tr.Insert(p, i) {
			stored = append(stored, p)
		}
	}
	for i := 0; i < 2000; i++ {
		q := New(rng.Uint32(), uint8(rng.Intn(33)))
		_, gotLen, gotOK := tr.LongestMatch(q)
		bestLen, bestOK := -1, false
		for _, p := range stored {
			if p.Covers(q) && int(p.Len) > bestLen {
				bestLen, bestOK = int(p.Len), true
			}
		}
		if gotOK != bestOK || (gotOK && int(gotLen) != bestLen) {
			t.Fatalf("LongestMatch(%v) = %d/%v, model %d/%v", q, gotLen, gotOK, bestLen, bestOK)
		}
	}
}
