// Package prefix implements IPv4 CIDR prefixes and a binary radix trie
// keyed by prefix. The trie is the lookup substrate shared by the RPKI ROA
// store and the ROVER reverse-DNS zone: both need exact-match, longest-match
// and covering-entry queries over address space.
package prefix

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block. Addr holds the network address in host
// byte order with all bits below Len zeroed (enforced by the constructors).
type Prefix struct {
	Addr uint32
	Len  uint8
}

// New returns the prefix addr/length with host bits masked off.
// Lengths greater than 32 are clamped to 32.
func New(addr uint32, length uint8) Prefix {
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & Mask(length), Len: length}
}

// Mask returns the network mask for a prefix length.
func Mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - length)
}

// Parse parses dotted-quad CIDR text such as "129.82.0.0/16".
func Parse(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("prefix %q: missing '/'", s)
	}
	addr, err := parseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("prefix %q: %w", s, err)
	}
	length, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || length > 32 {
		return Prefix{}, fmt.Errorf("prefix %q: bad length", s)
	}
	p := New(addr, uint8(length))
	if p.Addr != addr {
		return Prefix{}, fmt.Errorf("prefix %q: host bits set", s)
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(s string) Prefix {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseIPv4(s string) (uint32, error) {
	var addr uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("octet out of range")
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("malformed address")
			}
			addr = addr<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("bad character %q", c)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("malformed address")
	}
	return addr<<8 | uint32(val), nil
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	var b strings.Builder
	b.Grow(18)
	for shift := 24; shift >= 0; shift -= 8 {
		b.WriteString(strconv.Itoa(int(p.Addr >> uint(shift) & 0xff)))
		if shift > 0 {
			b.WriteByte('.')
		}
	}
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(int(p.Len)))
	return b.String()
}

// Contains reports whether p covers the single address addr.
func (p Prefix) Contains(addr uint32) bool {
	return addr&Mask(p.Len) == p.Addr
}

// Covers reports whether p covers q entirely (p is q or a supernet of q).
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Addr&Mask(p.Len) == p.Addr
}

// IsSubprefixOf reports whether p is a strictly more-specific prefix of q.
// This is the relation exercised by sub-prefix hijacks: a more-specific
// announcement wins longest-prefix-match forwarding everywhere.
func (p Prefix) IsSubprefixOf(q Prefix) bool {
	return p.Len > q.Len && q.Covers(p)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// Bit returns bit i (0 = most significant) of the prefix address.
func (p Prefix) Bit(i uint8) int {
	return int(p.Addr >> (31 - i) & 1)
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - p.Len)
}
