package prefix

import "testing"

// FuzzParse: the CIDR parser must never panic, and accepted inputs must
// round-trip through String.
func FuzzParse(f *testing.F) {
	for _, s := range []string{"129.82.0.0/16", "0.0.0.0/0", "255.255.255.255/32", "10.0.0.0/8"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip failed for %q → %v", s, p)
		}
	})
}
