package prefix

// Trie is a binary radix trie mapping prefixes to arbitrary values. It
// supports the three queries origin validation needs:
//
//   - Exact:       the value stored at precisely this prefix
//   - LongestMatch: the most-specific stored prefix covering a query
//   - Covering:    every stored prefix that covers a query (walk to root)
//
// The zero value is an empty trie ready to use.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	value V
	set   bool
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores value at p, replacing any existing value. It reports
// whether the prefix was newly inserted (false means replaced).
func (t *Trie[V]) Insert(p Prefix, value V) bool {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := uint8(0); i < p.Len; i++ {
		b := p.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.set
	n.value, n.set = value, true
	if fresh {
		t.size++
	}
	return fresh
}

// Exact returns the value stored at exactly p.
func (t *Trie[V]) Exact(p Prefix) (V, bool) {
	n := t.root
	for i := uint8(0); n != nil && i < p.Len; i++ {
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.value, true
}

// LongestMatch returns the value and length of the most-specific stored
// prefix that covers p (including p itself).
func (t *Trie[V]) LongestMatch(p Prefix) (value V, matchLen uint8, ok bool) {
	n := t.root
	for i := uint8(0); n != nil; i++ {
		if n.set {
			value, matchLen, ok = n.value, i, true
		}
		if i >= p.Len {
			break
		}
		n = n.child[p.Bit(i)]
	}
	return value, matchLen, ok
}

// Covering calls fn for every stored prefix covering p, from least to most
// specific. Iteration stops early if fn returns false.
func (t *Trie[V]) Covering(p Prefix, fn func(matchLen uint8, value V) bool) {
	n := t.root
	for i := uint8(0); n != nil; i++ {
		if n.set && !fn(i, n.value) {
			return
		}
		if i >= p.Len {
			return
		}
		n = n.child[p.Bit(i)]
	}
}

// Remove deletes the value stored at exactly p, reporting whether one was
// present. Interior nodes are left in place; for the simulation's static
// ROA tables this never matters, and it keeps removal O(len).
func (t *Trie[V]) Remove(p Prefix) bool {
	n := t.root
	for i := uint8(0); n != nil && i < p.Len; i++ {
		n = n.child[p.Bit(i)]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.value, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored (prefix, value) pair in address order.
func (t *Trie[V]) Walk(fn func(p Prefix, value V) bool) {
	var walk func(n *trieNode[V], addr uint32, depth uint8) bool
	walk = func(n *trieNode[V], addr uint32, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set && !fn(Prefix{Addr: addr, Len: depth}, n.value) {
			return false
		}
		if !walk(n.child[0], addr, depth+1) {
			return false
		}
		return walk(n.child[1], addr|1<<(31-depth), depth+1)
	}
	walk(t.root, 0, 0)
}
