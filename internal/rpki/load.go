package rpki

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

// LoadROAs parses "prefix maxlen origin" lines from r into the store —
// the text export format the cmd tools exchange ROA sets in. Blank lines
// and #-comments are skipped. published, when non-nil, is invoked once
// per loaded ROA prefix (detectors use it to register the prefix for
// sub-prefix classification). name labels parse errors with the file
// position, because real ROA dumps are thousands of lines long and "bad
// maxlen" without a line number is a needle hunt.
func LoadROAs(store *Store, r io.Reader, name string, published func(prefix.Prefix)) (int, error) {
	sc := bufio.NewScanner(r)
	// Published ROA exports can exceed bufio's 64 KiB default line cap.
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return n, fmt.Errorf("%s:%d: want 'prefix maxlen origin', got %q", name, lineNo, line)
		}
		p, err := prefix.Parse(fields[0])
		if err != nil {
			return n, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		maxLen, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return n, fmt.Errorf("%s:%d: bad maxlen %q", name, lineNo, fields[1])
		}
		origin, err := asn.Parse(fields[2])
		if err != nil {
			return n, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		if err := store.Add(ROA{Prefix: p, MaxLength: uint8(maxLen), Origin: origin}); err != nil {
			return n, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		if published != nil {
			published(p)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
	}
	return n, nil
}
