package rpki

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestROAValidate(t *testing.T) {
	if err := (ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 24, Origin: 65001}).Validate(); err != nil {
		t.Errorf("valid ROA rejected: %v", err)
	}
	if err := (ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 4, Origin: 65001}).Validate(); err == nil {
		t.Error("maxlen < prefix len accepted")
	}
	if err := (ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 40, Origin: 65001}).Validate(); err == nil {
		t.Error("maxlen > 32 accepted")
	}
}

func TestStoreValidateRFC6811(t *testing.T) {
	var s Store
	if err := s.Add(ROA{Prefix: mp("129.82.0.0/16"), MaxLength: 20, Origin: 12145}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		p      string
		origin uint32
		want   Validity
	}{
		{"129.82.0.0/16", 12145, Valid},     // exact match
		{"129.82.16.0/20", 12145, Valid},    // within maxlen
		{"129.82.16.0/24", 12145, Invalid},  // too specific (beyond maxlen)
		{"129.82.0.0/16", 666, Invalid},     // wrong origin
		{"129.82.16.0/20", 666, Invalid},    // wrong origin, covered
		{"10.0.0.0/8", 12145, NotFound},     // uncovered space
		{"129.0.0.0/8", 12145, NotFound},    // less specific than any ROA
		{"129.83.0.0/16", 12145, NotFound},  // sibling prefix
		{"129.82.128.0/17", 12145, Valid},   // /17 is still within maxlen 20
		{"129.82.128.0/21", 12145, Invalid}, // covered, beyond maxlen
	}
	for _, c := range cases {
		got := s.Validate(mp(c.p), asn.ASN(c.origin))
		if got != c.want {
			t.Errorf("Validate(%s, AS%d) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
}

func TestStoreMultipleROAs(t *testing.T) {
	var s Store
	// Multi-origin: two ROAs for the same prefix.
	if err := s.Add(ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 8, Origin: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 8, Origin: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Validate(mp("10.0.0.0/8"), 1); got != Valid {
		t.Errorf("origin 1 = %v", got)
	}
	if got := s.Validate(mp("10.0.0.0/8"), 2); got != Valid {
		t.Errorf("origin 2 = %v", got)
	}
	if got := s.Validate(mp("10.0.0.0/8"), 3); got != Invalid {
		t.Errorf("origin 3 = %v", got)
	}
	// Idempotent re-add.
	if err := s.Add(ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 8, Origin: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("idempotent Add changed Len = %d", s.Len())
	}
	origins := s.AuthorizedOrigins(mp("10.0.0.0/8"))
	if len(origins) != 2 || !origins.Contains(1) || !origins.Contains(2) {
		t.Errorf("AuthorizedOrigins = %v", origins.Sorted())
	}
}

// TestStoreNestedROAs: a customer's more-specific ROA must not invalidate
// the provider's covering announcement and vice versa.
func TestStoreNestedROAs(t *testing.T) {
	var s Store
	if err := s.Add(ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 8, Origin: 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(ROA{Prefix: mp("10.1.0.0/16"), MaxLength: 16, Origin: 200}); err != nil {
		t.Fatal(err)
	}
	if got := s.Validate(mp("10.1.0.0/16"), 200); got != Valid {
		t.Errorf("customer announcement = %v, want valid", got)
	}
	if got := s.Validate(mp("10.0.0.0/8"), 100); got != Valid {
		t.Errorf("provider announcement = %v, want valid", got)
	}
	// Hijacker announcing the /16 with the provider's ASN: the /8 ROA has
	// maxlen 8, so it does not authorize the /16 → Invalid.
	if got := s.Validate(mp("10.1.0.0/16"), 100); got != Invalid {
		t.Errorf("provider-ASN /16 = %v, want invalid", got)
	}
}

func TestCertificateChain(t *testing.T) {
	anchor, err := NewTrustAnchor("root", []prefix.Prefix{mp("0.0.0.0/0")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rir, err := anchor.Issue("rir-west", []prefix.Prefix{mp("128.0.0.0/2")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	isp, err := rir.Issue("isp-129.82", []prefix.Prefix{mp("129.82.0.0/16")}, 3)
	if err != nil {
		t.Fatal(err)
	}
	chain := []*Certificate{anchor.Cert, rir.Cert, isp.Cert}
	if err := VerifyChain(anchor.Cert, chain); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}

	// Resource escalation must be rejected at issue time…
	if _, err := rir.Issue("greedy", []prefix.Prefix{mp("0.0.0.0/0")}, 4); err == nil {
		t.Error("resource escalation accepted at Issue")
	}
	// …and a tampered chain at verify time.
	forged := *isp.Cert
	forged.Resources = []prefix.Prefix{mp("0.0.0.0/0")}
	if err := VerifyChain(anchor.Cert, []*Certificate{anchor.Cert, rir.Cert, &forged}); err == nil {
		t.Error("tampered resources accepted")
	}
	// Wrong order / wrong anchor.
	if err := VerifyChain(anchor.Cert, []*Certificate{rir.Cert, isp.Cert}); err == nil {
		t.Error("chain not starting at anchor accepted")
	}
	if err := VerifyChain(anchor.Cert, nil); err == nil {
		t.Error("empty chain accepted")
	}
	// A certificate signed by the wrong parent.
	other, err := NewTrustAnchor("other-root", []prefix.Prefix{mp("0.0.0.0/0")}, 9)
	if err != nil {
		t.Fatal(err)
	}
	stray, err := other.Issue("stray", []prefix.Prefix{mp("129.82.0.0/16")}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(anchor.Cert, []*Certificate{anchor.Cert, stray.Cert}); err == nil {
		t.Error("certificate from foreign chain accepted")
	}
}

func TestSignedROA(t *testing.T) {
	anchor, err := NewTrustAnchor("root", []prefix.Prefix{mp("0.0.0.0/0")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	isp, err := anchor.Issue("isp", []prefix.Prefix{mp("129.82.0.0/16")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	roa := ROA{Prefix: mp("129.82.0.0/16"), MaxLength: 24, Origin: 12145}
	sr, err := isp.SignROA(roa)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyROA(isp.Cert, sr); err != nil {
		t.Errorf("valid signed ROA rejected: %v", err)
	}
	// Signature over tampered content must fail.
	bad := sr
	bad.ROA.Origin = 666
	if err := VerifyROA(isp.Cert, bad); err == nil {
		t.Error("tampered ROA accepted")
	}
	// Signing outside authority resources must fail.
	if _, err := isp.SignROA(ROA{Prefix: mp("10.0.0.0/8"), MaxLength: 8, Origin: 1}); err == nil {
		t.Error("out-of-resource ROA signed")
	}
	// Invalid ROA must fail at signing.
	if _, err := isp.SignROA(ROA{Prefix: mp("129.82.0.0/16"), MaxLength: 8, Origin: 1}); err == nil {
		t.Error("malformed ROA signed")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a1, err := NewTrustAnchor("root", []prefix.Prefix{mp("0.0.0.0/0")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewTrustAnchor("root", []prefix.Prefix{mp("0.0.0.0/0")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(a1.Cert.PublicKey) != string(a2.Cert.PublicKey) {
		t.Error("same seed produced different keys")
	}
	a3, err := NewTrustAnchor("root", []prefix.Prefix{mp("0.0.0.0/0")}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(a1.Cert.PublicKey) == string(a3.Cert.PublicKey) {
		t.Error("different seeds produced identical keys")
	}
}
