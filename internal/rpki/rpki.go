// Package rpki implements the Resource Public Key Infrastructure substrate
// the paper's prevention mechanisms consume: Route Origin Authorizations
// (ROAs) held in a prefix-indexed store with RFC 6811 origin validation,
// and an Ed25519-based certificate chain (trust anchor → CA → end-entity)
// protecting the ROAs, mirroring RPKI's resource-certificate hierarchy.
package rpki

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

// Validity is the RFC 6811 route-origin validation outcome.
type Validity int8

const (
	// NotFound means no ROA covers the announced prefix; routers
	// traditionally accept such routes (deployment is incremental).
	NotFound Validity = iota
	// Valid means a covering ROA authorizes the announcing origin.
	Valid
	// Invalid means covering ROAs exist but none authorizes the origin —
	// the signature of an origin hijack.
	Invalid
)

// String returns the validity name.
func (v Validity) String() string {
	switch v {
	case NotFound:
		return "not-found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("Validity(%d)", int8(v))
	}
}

// OriginValidator is the oracle interface both RPKI and ROVER provide to
// filters and detectors.
type OriginValidator interface {
	Validate(p prefix.Prefix, origin asn.ASN) Validity
}

// ROA is one Route Origin Authorization: origin may announce p and any
// more-specific prefix up to MaxLength.
type ROA struct {
	Prefix    prefix.Prefix
	MaxLength uint8
	Origin    asn.ASN
}

// Validate checks the ROA's internal consistency.
func (r ROA) Validate() error {
	if r.MaxLength < r.Prefix.Len || r.MaxLength > 32 {
		return fmt.Errorf("roa %v: max length %d out of [%d, 32]", r.Prefix, r.MaxLength, r.Prefix.Len)
	}
	return nil
}

// covers reports whether the ROA makes (p, origin) Valid.
func (r ROA) covers(p prefix.Prefix, origin asn.ASN) bool {
	return r.Origin == origin && r.Prefix.Covers(p) && p.Len <= r.MaxLength
}

// Store is an in-memory ROA database with RFC 6811 validation semantics.
// The zero value is empty and ready to use.
type Store struct {
	trie prefix.Trie[[]ROA]
	n    int
}

var _ OriginValidator = (*Store)(nil)

// Add inserts a ROA.
func (s *Store) Add(r ROA) error {
	if err := r.Validate(); err != nil {
		return err
	}
	existing, _ := s.trie.Exact(r.Prefix)
	for _, e := range existing {
		if e == r {
			return nil // idempotent
		}
	}
	s.trie.Insert(r.Prefix, append(existing, r))
	s.n++
	return nil
}

// Len returns the number of stored ROAs.
func (s *Store) Len() int { return s.n }

// Validate classifies an announcement per RFC 6811: Valid if any covering
// ROA authorizes the origin with sufficient MaxLength, Invalid if covering
// ROAs exist but none matches, NotFound if the prefix is entirely
// uncovered.
func (s *Store) Validate(p prefix.Prefix, origin asn.ASN) Validity {
	res := NotFound
	s.trie.Covering(p, func(_ uint8, roas []ROA) bool {
		for _, r := range roas {
			if r.covers(p, origin) {
				res = Valid
				return false
			}
			res = Invalid
		}
		return true
	})
	return res
}

// AuthorizedOrigins returns the set of origins some covering ROA
// authorizes for p (useful for detector comparison data).
func (s *Store) AuthorizedOrigins(p prefix.Prefix) asn.Set {
	out := asn.NewSet()
	s.trie.Covering(p, func(_ uint8, roas []ROA) bool {
		for _, r := range roas {
			if r.Prefix.Covers(p) && p.Len <= r.MaxLength {
				out.Add(r.Origin)
			}
		}
		return true
	})
	return out
}

// --- Certificate chain -----------------------------------------------------

// Certificate is an RPKI-style resource certificate: a public key bound to
// a set of address resources, signed by its issuer.
type Certificate struct {
	Subject   string
	Resources []prefix.Prefix
	PublicKey ed25519.PublicKey
	// Signature is by the issuer over the certificate's canonical bytes
	// (trust anchors are self-signed).
	Signature []byte
}

// signedBytes is the canonical serialization covered by the signature.
func (c *Certificate) signedBytes() []byte {
	var buf bytes.Buffer
	writeString(&buf, c.Subject)
	binary.Write(&buf, binary.BigEndian, uint32(len(c.Resources))) //nolint:errcheck // bytes.Buffer cannot fail
	for _, p := range c.Resources {
		binary.Write(&buf, binary.BigEndian, p.Addr) //nolint:errcheck
		buf.WriteByte(p.Len)
	}
	buf.Write(c.PublicKey)
	return buf.Bytes()
}

func writeString(w io.Writer, s string) {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(s)))
	w.Write(lenBuf[:]) //nolint:errcheck
	io.WriteString(w, s)
}

// holdsResources reports whether every prefix in sub is covered by some
// prefix in super — the RPKI resource-containment rule.
func holdsResources(super, sub []prefix.Prefix) bool {
	for _, s := range sub {
		ok := false
		for _, p := range super {
			if p.Covers(s) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Authority is a certificate authority: a certificate plus its private
// key, able to issue subordinate certificates and sign ROAs.
type Authority struct {
	Cert *Certificate
	priv ed25519.PrivateKey
}

// NewTrustAnchor creates a self-signed root authority holding the given
// resources. Key material is derived deterministically from the seed so
// simulations are reproducible.
func NewTrustAnchor(subject string, resources []prefix.Prefix, seed int64) (*Authority, error) {
	pub, priv := keyFromSeed(subject, seed)
	cert := &Certificate{Subject: subject, Resources: resources, PublicKey: pub}
	cert.Signature = ed25519.Sign(priv, cert.signedBytes())
	return &Authority{Cert: cert, priv: priv}, nil
}

// Issue creates a subordinate authority whose resources must be contained
// in the issuer's.
func (a *Authority) Issue(subject string, resources []prefix.Prefix, seed int64) (*Authority, error) {
	if !holdsResources(a.Cert.Resources, resources) {
		return nil, fmt.Errorf("issue %q: resources exceed issuer %q", subject, a.Cert.Subject)
	}
	pub, priv := keyFromSeed(subject, seed)
	cert := &Certificate{Subject: subject, Resources: resources, PublicKey: pub}
	cert.Signature = ed25519.Sign(a.priv, cert.signedBytes())
	return &Authority{Cert: cert, priv: priv}, nil
}

// SignedROA is a ROA plus the authority signature over it.
type SignedROA struct {
	ROA       ROA
	Signature []byte
}

func roaBytes(r ROA) []byte {
	var buf [13]byte
	binary.BigEndian.PutUint32(buf[0:4], r.Prefix.Addr)
	buf[4] = r.Prefix.Len
	buf[5] = r.MaxLength
	binary.BigEndian.PutUint32(buf[6:10], r.Origin.Uint32())
	return buf[:10]
}

// SignROA signs a ROA; the ROA prefix must be within the authority's
// resources.
func (a *Authority) SignROA(r ROA) (SignedROA, error) {
	if err := r.Validate(); err != nil {
		return SignedROA{}, err
	}
	if !holdsResources(a.Cert.Resources, []prefix.Prefix{r.Prefix}) {
		return SignedROA{}, fmt.Errorf("sign roa %v: outside authority %q resources", r.Prefix, a.Cert.Subject)
	}
	return SignedROA{ROA: r, Signature: ed25519.Sign(a.priv, roaBytes(r))}, nil
}

// VerifyChain validates a certificate chain ordered trust-anchor-first:
// each certificate must be signed by its predecessor and hold a subset of
// its resources; the anchor must be self-signed and match the pinned
// anchor certificate.
func VerifyChain(anchor *Certificate, chain []*Certificate) error {
	if len(chain) == 0 {
		return fmt.Errorf("verify chain: empty")
	}
	first := chain[0]
	if !bytes.Equal(first.PublicKey, anchor.PublicKey) || first.Subject != anchor.Subject {
		return fmt.Errorf("verify chain: first certificate is not the pinned trust anchor")
	}
	if !ed25519.Verify(first.PublicKey, first.signedBytes(), first.Signature) {
		return fmt.Errorf("verify chain: trust anchor self-signature invalid")
	}
	for i := 1; i < len(chain); i++ {
		parent, child := chain[i-1], chain[i]
		if !ed25519.Verify(parent.PublicKey, child.signedBytes(), child.Signature) {
			return fmt.Errorf("verify chain: %q not signed by %q", child.Subject, parent.Subject)
		}
		if !holdsResources(parent.Resources, child.Resources) {
			return fmt.Errorf("verify chain: %q resources exceed issuer %q", child.Subject, parent.Subject)
		}
	}
	return nil
}

// VerifyROA checks a signed ROA against the end-entity certificate of a
// verified chain: signature valid and prefix within the certificate's
// resources.
func VerifyROA(ee *Certificate, sr SignedROA) error {
	if !ed25519.Verify(ee.PublicKey, roaBytes(sr.ROA), sr.Signature) {
		return fmt.Errorf("verify roa %v: bad signature", sr.ROA.Prefix)
	}
	if !holdsResources(ee.Resources, []prefix.Prefix{sr.ROA.Prefix}) {
		return fmt.Errorf("verify roa %v: outside certificate resources", sr.ROA.Prefix)
	}
	return nil
}

// keyFromSeed derives a deterministic Ed25519 keypair from a subject+seed.
func keyFromSeed(subject string, seed int64) (ed25519.PublicKey, ed25519.PrivateKey) {
	h := sha256.New()
	io.WriteString(h, subject)               //nolint:errcheck
	binary.Write(h, binary.BigEndian, seed)  //nolint:errcheck
	io.WriteString(h, "bgpsim-rpki-keyseed") //nolint:errcheck
	priv := ed25519.NewKeyFromSeed(h.Sum(nil))
	return priv.Public().(ed25519.PublicKey), priv
}
