// Rollout-planning compares incremental filter-deployment strategies for
// protecting a chosen AS (the paper's Section V), locating the non-linear
// knee where "small security improvements shift into large security
// gains".
package main

import (
	"fmt"
	"log"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim, err := bgpsim.New(bgpsim.WithScale(6000), bgpsim.WithSeed(5))
	if err != nil {
		return err
	}

	// Protect a vulnerable deep stub (the AS55857 analog).
	target, err := sim.FindAS(bgpsim.TargetQuery{Depth: 4, Stub: true})
	if err != nil {
		target, err = sim.FindAS(bgpsim.TargetQuery{Depth: 3, Stub: true})
		if err != nil {
			return err
		}
	}
	depth, _ := sim.DepthOf(target)
	fmt.Printf("planning a rollout to protect %v (depth %d)\n\n", target, depth)

	// The paper's ladder: nothing → random → tier-1 → core-outward.
	ladder := sim.DeploymentLadder(1)
	evals, err := sim.EvaluateDeployment(target, ladder, 400, 2)
	if err != nil {
		return err
	}
	base := evals[0].Result.Summary().Mean
	fmt.Printf("%-32s %14s %10s\n", "strategy", "mean polluted", "of baseline")
	for _, e := range evals {
		s := e.Result.Summary()
		fmt.Printf("%-32s %14.1f %9.0f%%\n", e.Strategy.Name, s.Mean, 100*s.Mean/base)
	}

	// Where is the knee? Walk top-k deployments to find the smallest core
	// that removes ≥ 75 % of baseline pollution.
	fmt.Println("\nsearching for the critical mass (≥75% reduction):")
	for _, k := range []int{2, 4, 8, 12, 16, 24, 32, 48, 64} {
		st := sim.TopDegreeDeployment(k)
		ev, err := sim.EvaluateDeployment(target, []bgpsim.Strategy{st}, 400, 2)
		if err != nil {
			return err
		}
		mean := ev[0].Result.Summary().Mean
		marker := ""
		if mean <= base/4 {
			marker = "  ← critical mass reached"
		}
		fmt.Printf("  top %2d by degree: mean %8.1f (%4.0f%% of baseline)%s\n",
			k, mean, 100*mean/base, marker)
		if marker != "" {
			break
		}
	}

	// And the contrast the paper draws: the same budget spent at random.
	fmt.Println("\nthe same budgets spent on random transit ASes:")
	for _, k := range []int{8, 32, 64} {
		st := sim.RandomDeployment(k, 3)
		ev, err := sim.EvaluateDeployment(target, []bgpsim.Strategy{st}, 400, 2)
		if err != nil {
			return err
		}
		mean := ev[0].Result.Summary().Mean
		fmt.Printf("  random %2d: mean %8.1f (%4.0f%% of baseline)\n", k, mean, 100*mean/base)
	}
	return nil
}
