// Detector-placement explores the paper's Section VI question: where must
// a hijack detector peer to avoid blind spots? It compares the paper's
// three configurations, then greedily grows a probe set and shows the
// diminishing-returns curve.
package main

import (
	"fmt"
	"log"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim, err := bgpsim.New(bgpsim.WithScale(6000), bgpsim.WithSeed(11))
	if err != nil {
		return err
	}
	const attacks = 1500
	const seed = 9

	// The paper's three configurations.
	configs := []bgpsim.ProbeSet{
		sim.Tier1Probes(),
		sim.BGPmonLikeProbes(24, 3),
		sim.TopDegreeProbes(20),
	}
	fmt.Printf("workload: %d random transit-pair attacks\n\n", attacks)
	for _, ps := range configs {
		res, err := sim.EvaluateDetection(ps, attacks, seed)
		if err != nil {
			return err
		}
		mean, max := res.MissSummary()
		fmt.Printf("%-24s probes=%-3d missed=%4d (%.1f%%)  undetected mean pollution %.0f, max %d\n",
			ps.Name, len(ps.Probes), res.MissCount(), 100*res.MissRate(), mean, max)
		for _, m := range res.TopMisses(3) {
			fmt.Printf("    blind spot: attacker node %d → target node %d polluted %d ASes unseen\n",
				m.Attacker, m.Target, m.Pollution)
		}
	}

	// Growth curve: top-k degree probes for increasing k. The knee of
	// this curve is the "critical mass of probes" the paper calls for.
	fmt.Println("\ncoverage growth with top-degree probes:")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		ps := sim.TopDegreeProbes(k)
		res, err := sim.EvaluateDetection(ps, attacks, seed)
		if err != nil {
			return err
		}
		bar := ""
		for i := 0; i < int(100*res.MissRate())/2; i++ {
			bar += "#"
		}
		fmt.Printf("  %3d probes: miss %5.1f%% %s\n", k, 100*res.MissRate(), bar)
	}

	// The paper's recommendation, made constructive: pick probes by
	// greedy set cover ("high-degree, NON-OVERLAPPING ASes"), train on
	// one workload, evaluate on a fresh one.
	fmt.Println("\ngreedy (non-overlapping) placement vs raw degree, fresh workload:")
	for _, k := range []int{4, 8, 16} {
		greedy, err := sim.GreedyProbes(k, 800, seed)
		if err != nil {
			return err
		}
		rg, err := sim.EvaluateDetection(greedy, attacks, seed+1)
		if err != nil {
			return err
		}
		rd, err := sim.EvaluateDetection(sim.TopDegreeProbes(k), attacks, seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%2d: greedy misses %5.1f%%   top-degree misses %5.1f%%\n",
			k, 100*rg.MissRate(), 100*rd.MissRate())
	}
	return nil
}
