// Live-detection runs the whole hijack-detection pipeline end to end, the
// way the paper's Section VI systems (BGPmon + PHAS/ROVER-style
// detectors) are deployed in practice:
//
//  1. a BGP route collector listens on localhost TCP;
//  2. probe ASes open real BGP sessions (OPEN/KEEPALIVE/UPDATE wire
//     format) and stream their view of a simulated hijack;
//  3. the detector validates every announcement against published route
//     origins and raises an alert the moment a probe reports the bogus
//     origin.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim, err := bgpsim.New(bgpsim.WithScale(3000), bgpsim.WithSeed(4))
	if err != nil {
		return err
	}

	// The victim publishes its route origin — the critical Section VII
	// step that gives detectors authoritative data.
	victim, err := sim.FindAS(bgpsim.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		return err
	}
	victimPrefix, err := bgpsim.ParsePrefix("129.82.0.0/16")
	if err != nil {
		return err
	}
	if err := sim.PublishROA(bgpsim.ROA{Prefix: victimPrefix, MaxLength: 24, Origin: victim}); err != nil {
		return err
	}

	// Detector + collector on localhost.
	alerts := make(chan bgpsim.Alert, 8)
	detector := bgpsim.NewDetector(sim.ROAStore(), func(a bgpsim.Alert) { alerts <- a })
	detector.NotePublished(victimPrefix)
	collector := &bgpsim.Collector{LocalAS: 65535, RouterID: 0x7f000001, Detector: detector}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- collector.Serve(l) }() // returns when the listener closes
	fmt.Printf("collector listening on %s (AS%d)\n", l.Addr(), collector.LocalAS)

	// Simulate a hijack and reconstruct what each probe would see. Not
	// every attack is visible from every probe set (that is the paper's
	// Figure 7 finding); scan attackers until one of this detector's
	// probes carries the bogus route.
	probes := sim.TopDegreeProbes(16)
	probeSet := make(map[bgpsim.ASN]bool)
	for _, a := range sim.ProbeASNs(probes) {
		probeSet[a] = true
	}
	var rep *bgpsim.HijackReport
	var attacker bgpsim.ASN
	for _, cand := range sim.Tier1ASNs() {
		r, err := sim.Hijack(bgpsim.HijackSpec{Attacker: cand, Target: victim})
		if err != nil {
			return err
		}
		if rep == nil {
			rep, attacker = r, cand // fall back to the first attack
		}
		for _, p := range sim.PollutedASNs(r.Outcome) {
			// A probe session with the attacker itself would trivially see
			// the hijack; require an independent vantage point.
			if probeSet[p] && p != cand {
				rep, attacker = r, cand
				goto found
			}
		}
	}
	fmt.Println("note: no tier-1 attack is visible from these probes — expect the blind-spot path below")
found:
	fmt.Printf("simulated hijack: %v announces %v (owned by %v); %d ASes polluted\n",
		attacker, victimPrefix, victim, rep.PollutedASes)
	// Stream from independent vantage points only (drop the attacker if
	// it happens to be among the probes).
	var vantage []bgpsim.ASN
	for _, a := range sim.ProbeASNs(probes) {
		if a != attacker {
			vantage = append(vantage, a)
		}
	}
	probes, err = sim.ProbesAt("independent vantage points", vantage)
	if err != nil {
		return err
	}
	updates, err := sim.FeedFromHijack(rep, victimPrefix, probes)
	if err != nil {
		return err
	}
	fmt.Printf("streaming %d probe feeds over BGP sessions...\n", len(updates))

	// One real BGP session per probe.
	var wg sync.WaitGroup
	for _, tu := range updates {
		wg.Add(1)
		go func(tu bgpsim.FeedUpdate) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				log.Println(err)
				return
			}
			probe := &bgpsim.FeedProbe{AS: tu.PeerAS, RouterID: tu.PeerAS.Uint32()}
			if err := probe.Dial(conn); err != nil {
				log.Println(err)
				return
			}
			defer func() { _ = probe.Close() }() // best-effort session teardown
			if err := probe.Send(tu.Update); err != nil {
				log.Println(err)
			}
		}(tu)
	}
	wg.Wait()
	// Stop accepting and wait for every session to drain before reading
	// the verdict.
	if err := l.Close(); err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := collector.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("collector shutdown: %w", err)
	}
	// Serve returned once the listener closed; collect its verdict so the
	// accept-loop goroutine is fully joined before we read the alerts.
	if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("collector serve: %w", err)
	}

	select {
	case a := <-alerts:
		fmt.Printf("\nALERT [%s]: peer %v reports %v originated by %v (path %v)\n",
			a.Reason, a.PeerAS, a.Prefix, a.Origin, a.Path)
		fmt.Println("hijack detected — operators notified.")
	default:
		fmt.Println("\nno alert: none of the probes selected the bogus route (a blind spot!)")
		fmt.Println("re-run with more or better-placed probes (see examples/detector-placement).")
	}
	return nil
}
