// Quickstart: build a synthetic internet, run one origin hijack, and see
// why topological position matters — the library's two-minute tour.
package main

import (
	"fmt"
	"log"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A ~5000-AS internet with the paper's macro-structure: a tier-1
	// clique, a high-degree tier-2 core, regional transit, and stubs at
	// depths 1–6. The same seed always yields the same internet.
	sim, err := bgpsim.New(bgpsim.WithScale(5000), bgpsim.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Printf("internet: %d ASes, %d relationship links, tier-1 clique %v\n\n",
		sim.NumASes(), sim.NumLinks(), sim.Tier1ASNs())

	// Pick two victims that differ only in topological position: a stub
	// directly below the core (depth 1) and one buried five provider hops
	// deep — the paper's AS98 vs AS55857 contrast.
	shallow, err := sim.FindAS(bgpsim.TargetQuery{Depth: 1, Stub: true})
	if err != nil {
		return err
	}
	deep, err := sim.FindAS(bgpsim.TargetQuery{Depth: 4, Stub: true})
	if err != nil {
		// Smaller topologies may top out at depth 3.
		deep, err = sim.FindAS(bgpsim.TargetQuery{Depth: 3, Stub: true})
		if err != nil {
			return err
		}
	}
	attacker := sim.Tier1ASNs()[0]

	for _, target := range []bgpsim.ASN{shallow, deep} {
		depth, _ := sim.DepthOf(target)
		rep, err := sim.Hijack(bgpsim.HijackSpec{Attacker: attacker, Target: target})
		if err != nil {
			return err
		}
		fmt.Printf("%v hijacks %v (depth %d): %5d ASes polluted (%4.1f%%), %4.1f%% of address space diverted\n",
			attacker, target, depth, rep.PollutedASes, 100*rep.PollutedFrac, 100*rep.AddrSpaceFrac)
	}

	// Watch one attack propagate generation by generation (the message
	// engine behind the paper's Figure 1).
	fmt.Println("\npropagation of the deep-target attack:")
	_, trace, err := sim.TraceHijack(attacker, deep)
	if err != nil {
		return err
	}
	for g := 1; g <= trace.Generations; g++ {
		accepted := 0
		for _, ev := range trace.EventsInGen(g) {
			if ev.Accepted {
				accepted++
			}
		}
		fmt.Printf("  generation %2d: %5d messages, %5d accepted\n",
			g, len(trace.EventsInGen(g)), accepted)
	}
	return nil
}
