// Bank-regional-defense walks the paper's Section VII self-interest
// process end to end for a "bank" AS whose customers live in one region:
//
//  1. analyze the relevant AS topology (depth, degree, reach);
//  2. reduce vulnerability by re-homing;
//  3. publish route origins (ROVER/RPKI) — creating leverage;
//  4. incorporate a filter at the regional hub;
//  5. use detection and check for blind spots.
package main

import (
	"fmt"
	"log"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim, err := bgpsim.New(bgpsim.WithScale(4000), bgpsim.WithSeed(7))
	if err != nil {
		return err
	}

	// The "bank": the deepest stub in the island region (the generated
	// topology's New Zealand analog — a bounded regional mesh behind one
	// hub transit provider).
	island := sim.IslandRegion()
	members := sim.RegionASNs(island)
	var bank bgpsim.ASN
	bankDepth := -1
	for _, a := range members {
		if d, _ := sim.DepthOf(a); d > bankDepth {
			if deg, _ := sim.DegreeOf(a); deg <= 2 { // a stub, not the hub
				bank, bankDepth = a, d
			}
		}
	}
	hub, err := sim.RegionHub(island)
	if err != nil {
		return err
	}

	// Step 1 — analysis.
	reach, _ := sim.ReachOf(bank)
	fmt.Printf("STEP 1 analyze: bank %v sits at depth %d (reach %d) in region %d (%d ASes), behind hub %v\n",
		bank, bankDepth, reach, island, len(members), hub)
	base, err := sim.MeasureRegional(bank, 150, 1, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  baseline exposure: regional attacks pollute %.1f of %d region ASes (%.0f%%); outside attacks %.1f (%.0f%%)\n",
		base.InsideMean, base.RegionSize, 100*base.InsideFrac, base.OutsideMean, 100*base.OutsideFrac)

	// Step 2 — reduce vulnerability by re-homing up the provider chain.
	if bankDepth >= 2 {
		rehomed, err := sim.Rehome(bank, 2)
		if err != nil {
			return err
		}
		newDepth, _ := rehomed.DepthOf(bank)
		after, err := rehomed.MeasureRegional(bank, 150, 1, nil)
		if err != nil {
			return err
		}
		fmt.Printf("STEP 2 re-home: depth %d → %d; regional pollution %.1f → %.1f ASes per inside attack\n",
			bankDepth, newDepth, base.InsideMean, after.InsideMean)
	} else {
		fmt.Println("STEP 2 re-home: bank already at depth 1; nothing to gain")
	}

	// Step 3 — publish the route origin. Until this happens, filters have
	// no authoritative data and cannot arm.
	bankPrefix, err := bgpsim.ParsePrefix("203.97.0.0/16")
	if err != nil {
		return err
	}
	attacker := sim.Tier1ASNs()[len(sim.Tier1ASNs())-1]
	spec := bgpsim.HijackSpec{
		Attacker:        attacker,
		Target:          bank,
		Filters:         []bgpsim.ASN{hub},
		ValidateAgainst: sim.ROAStore(),
		HijackedPrefix:  bankPrefix,
	}
	before, err := sim.Hijack(spec)
	if err != nil {
		return err
	}
	if err := sim.PublishROA(bgpsim.ROA{Prefix: bankPrefix, MaxLength: 24, Origin: bank}); err != nil {
		return err
	}
	fmt.Printf("STEP 3 publish: ROA for %v signed; before publication the hub filter could not arm (armed=%v)\n",
		bankPrefix, before.FiltersArmed)

	// Step 4 — the hub filter, now armed by the published origin. One
	// filter cannot save the wider internet, and even regionally it only
	// guards routes that cross the hub: attacks slipping in through the
	// island's other border links still pollute (the paper's "where
	// attacks are still getting through"). The aggregate regional
	// measurement below shows where it does win.
	after, err := sim.Hijack(spec)
	if err != nil {
		return err
	}
	inIsland := make(map[bgpsim.ASN]bool, len(members))
	for _, a := range members {
		inIsland[a] = true
	}
	regionalPolluted := func(rep *bgpsim.HijackReport) int {
		n := 0
		for _, a := range sim.PollutedASNs(rep.Outcome) {
			if inIsland[a] {
				n++
			}
		}
		return n
	}
	fmt.Printf("STEP 4 filter: hub filter armed=%v; this particular attack pollutes %d → %d region members (it enters via the island's side doors; global pollution stays %d)\n",
		after.FiltersArmed, regionalPolluted(before), regionalPolluted(after), after.PollutedASes)
	withFilter, err := sim.MeasureRegional(bank, 150, 1, []bgpsim.ASN{hub})
	if err != nil {
		return err
	}
	fmt.Printf("  regional exposure with hub filter: inside %.1f → %.1f, outside %.1f → %.1f ASes\n",
		base.InsideMean, withFilter.InsideMean, base.OutsideMean, withFilter.OutsideMean)

	// Step 5 — detection: subscribe to probes, then check for blind spots
	// with the simulator ("run simulations to see if there are any blind
	// spots regarding relevant AS endpoints").
	probes := sim.BGPmonLikeProbes(24, 3)
	det, err := sim.EvaluateDetection(probes, 800, 5)
	if err != nil {
		return err
	}
	fmt.Printf("STEP 5 detect: %s misses %.1f%% of random attacks", probes.Name, 100*det.MissRate())
	// Improve the blind spots by adding the island hub as a probe.
	better, err := sim.ProbesAt("probes + regional hub", append(sim.ProbeASNs(probes), hub))
	if err != nil {
		return err
	}
	det2, err := sim.EvaluateDetection(better, 800, 5)
	if err != nil {
		return err
	}
	fmt.Printf("; adding the hub as a vantage point: %.1f%%\n", 100*det2.MissRate())

	// Step 6 — have an operational plan if an alert fires: the classic
	// reactive mitigation is a sub-prefix counter-announcement. Beware the
	// interaction with step 3: a ROA whose MaxLength equals the covering
	// prefix makes the bank's own more-specifics Invalid, so validators
	// would drop the cure. We published MaxLength 24 above, so the /17
	// halves stay valid.
	mit, err := sim.Mitigate(bank, attacker, bankPrefix, sim.FiltersOf(sim.TopDegreeDeployment(20)))
	if err != nil {
		return err
	}
	fmt.Printf("STEP 6 mitigate: counter-announce %v and %v (valid=%v): %d ASes recovered, %d stranded\n",
		mit.Halves[0], mit.Halves[1], mit.MitigationValid, mit.RecoveredASes, mit.StrandedASes)
	return nil
}
