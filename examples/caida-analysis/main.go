// Caida-analysis profiles an AS-relationship topology the way the paper's
// Section VII "analysis" step prescribes: load real CAIDA data (or
// generate a synthetic internet), audit its structural health, and report
// the vulnerability profile — depth, degree, reach, and a quick hijack
// sweep — for an AS of interest.
//
// Usage:
//
//	go run ./examples/caida-analysis                       # synthetic
//	go run ./examples/caida-analysis as-rel.txt AS12145    # real data
package main

import (
	"fmt"
	"log"
	"os"

	bgpsim "github.com/bgpsim/bgpsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	var sim *bgpsim.Simulator
	var subject bgpsim.ASN
	switch {
	case len(args) >= 1:
		fh, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer fh.Close()
		sim, err = bgpsim.Load(fh)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s: %d ASes, %d links\n", args[0], sim.NumASes(), sim.NumLinks())
		if len(args) >= 2 {
			if subject, err = bgpsim.ParseASN(args[1]); err != nil {
				return err
			}
		}
	default:
		var err error
		sim, err = bgpsim.New(bgpsim.WithScale(3000), bgpsim.WithSeed(11))
		if err != nil {
			return err
		}
		fmt.Printf("generated synthetic internet: %d ASes, %d links\n", sim.NumASes(), sim.NumLinks())
	}
	if subject == 0 {
		// Default subject: a moderately deep stub, the class the paper
		// shows to be most at risk.
		var err error
		subject, err = sim.FindAS(bgpsim.TargetQuery{Depth: 3, Stub: true})
		if err != nil {
			subject, err = sim.FindAS(bgpsim.TargetQuery{Depth: 2, Stub: true})
			if err != nil {
				return err
			}
		}
	}

	fmt.Printf("tier-1 clique: %v\n\n", sim.Tier1ASNs())

	// The paper's per-AS risk profile.
	depth, err := sim.DepthOf(subject)
	if err != nil {
		return err
	}
	degree, _ := sim.DegreeOf(subject)
	reach, _ := sim.ReachOf(subject)
	fmt.Printf("subject %v: depth %d, degree %d, reach %d\n", subject, depth, degree, reach)
	switch {
	case depth <= 1:
		fmt.Println("  → depth ≤ 1: relatively attack-resistant position")
	case depth == 2:
		fmt.Println("  → depth 2: the concavity flip — vulnerability rises sharply here")
	default:
		fmt.Printf("  → depth %d: very vulnerable; consider re-homing toward the core\n", depth)
	}

	// Quick vulnerability sweep (sampled) with the shape verdict.
	sweep, err := sim.VulnerabilitySweep(subject, 400)
	if err != nil {
		return err
	}
	sum := sweep.Summary()
	fmt.Printf("\nsampled hijack sweep (400 attackers): mean %.0f polluted ASes (%.0f%% of internet), max %d\n",
		sum.Mean, 100*sum.Mean/float64(sim.NumASes()), sum.Max)

	// What would the core-filter rollout buy this AS?
	ladder := []bgpsim.Strategy{
		sim.Tier1Deployment(),
		sim.TopDegreeDeployment(sim.NumASes() * 62 / 42697),
	}
	evals, err := sim.EvaluateDeployment(subject, ladder, 200, 1)
	if err != nil {
		return err
	}
	fmt.Println("\nprotection from incremental filter rollout:")
	for _, e := range evals {
		fmt.Printf("  %-28s mean polluted %.0f (%.0f%% of baseline)\n",
			e.Strategy.Name, e.Result.Summary().Mean, 100*e.Result.Summary().Mean/sum.Mean)
	}
	return nil
}
