package bgpsim

import (
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Experiment-result re-exports: every figure and table of the paper is
// runnable through the Simulator (the cmd/ tools are thin wrappers over
// the same runners).
type (
	// VulnerabilityPanel is a Figure 2/3 result (CCDF per depth class).
	VulnerabilityPanel = experiments.VulnerabilityResult
	// StubFilterPanel is the Figure 4 result.
	StubFilterPanel = experiments.Fig4Result
	// DeploymentPanel is a Figure 5/6 result with the residual table.
	DeploymentPanel = experiments.DeploymentResult
	// DetectionPanel is the Figure 7 result with the Section VI tables.
	DetectionPanel = experiments.DetectionResult
	// SelfInterestPanel is the Section VII result.
	SelfInterestPanel = experiments.SelfInterestResult
	// ValidationPanel is the Section III RIB-comparison result.
	ValidationPanel = experiments.ValidationResult
	// PropagationPanel is the Figure 1 result (trace + frames).
	PropagationPanel = experiments.PropagationResult
	// HolePanel is the future-work undetected-residual-attack analysis.
	HolePanel = experiments.HoleResult
	// SubPrefixPanel contrasts origin and sub-prefix hijacks.
	SubPrefixPanel = experiments.SubPrefixResult
	// SBGPPanel compares S*BGP security-rank policies under partial
	// deployment.
	SBGPPanel = experiments.SBGPResult
	// FalseAlarmPanel compares detector data-source freshness.
	FalseAlarmPanel = experiments.FalseAlarmResult
)

// ExperimentOptions tunes the experiment runners. Zero values select
// sensible defaults (documented per field).
type ExperimentOptions struct {
	// AttackerSample caps sweep attacker populations (0 = all).
	AttackerSample int
	// Attacks is the random-workload size for detection-style experiments
	// (0 = 2000).
	Attacks int
	// Seed drives workload generation and sampling (0 = 1).
	Seed int64
}

func (o ExperimentOptions) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// RunVulnerabilityPanel reproduces Figure 2 (underTier2=false) or
// Figure 3 (underTier2=true).
func (s *Simulator) RunVulnerabilityPanel(underTier2 bool, o ExperimentOptions) (*VulnerabilityPanel, error) {
	cfg := experiments.VulnerabilityConfig{AttackerSample: o.AttackerSample, Seed: o.seed()}
	if underTier2 {
		return experiments.Fig3(s.world, cfg)
	}
	return experiments.Fig2(s.world, cfg)
}

// RunStubFilterStudy reproduces Figure 4.
func (s *Simulator) RunStubFilterStudy(o ExperimentOptions) (*StubFilterPanel, error) {
	return experiments.Fig4(s.world, experiments.VulnerabilityConfig{
		AttackerSample: o.AttackerSample, Seed: o.seed(),
	})
}

// RunDeploymentPanel reproduces Figure 5 (deep=false, resistant target)
// or Figure 6 (deep=true, vulnerable target), including the Section V
// residual-attack table.
func (s *Simulator) RunDeploymentPanel(deep bool, o ExperimentOptions) (*DeploymentPanel, error) {
	cfg := experiments.DeploymentConfig{AttackerSample: o.AttackerSample, Seed: o.seed()}
	if deep {
		return experiments.Fig6(s.world, cfg)
	}
	return experiments.Fig5(s.world, cfg)
}

// RunDetectionPanel reproduces Figure 7 and the Section VI tables.
func (s *Simulator) RunDetectionPanel(o ExperimentOptions) (*DetectionPanel, error) {
	return experiments.Fig7(s.world, experiments.DetectionConfig{
		Attacks: o.Attacks, Seed: o.seed(),
	})
}

// RunSectionVII reproduces the Section VII island-region case study.
func (s *Simulator) RunSectionVII(o ExperimentOptions) (*SelfInterestPanel, error) {
	return experiments.SectionVII(s.world, experiments.SelfInterestConfig{
		OutsideSample: o.Attacks, Seed: o.seed(),
	})
}

// RunValidationStudy reproduces the Section III RIB-comparison study.
func (s *Simulator) RunValidationStudy(o ExperimentOptions) (*ValidationPanel, error) {
	origins := o.Attacks
	if origins == 0 {
		origins = 5
	}
	return experiments.ValidationStudy(s.world, experiments.ValidationConfig{
		Origins: origins, Seed: o.seed(),
	})
}

// RunPropagationStudy reproduces Figure 1 (engine trace of an aggressive
// attack on the deepest target).
func (s *Simulator) RunPropagationStudy() (*PropagationPanel, error) {
	return experiments.Fig1(s.world)
}

// RunHoleAnalysis reproduces the paper's future-work study of successful
// undetected attacks under default (scaled 62-core) filters and probes.
func (s *Simulator) RunHoleAnalysis(o ExperimentOptions) (*HolePanel, error) {
	return experiments.HoleAnalysis(s.world, experiments.HoleConfig{
		Attacks: o.Attacks, Seed: o.seed(),
	})
}

// RunSubPrefixStudy contrasts origin and sub-prefix hijacks under the
// deployment ladder.
func (s *Simulator) RunSubPrefixStudy(o ExperimentOptions) (*SubPrefixPanel, error) {
	return experiments.SubPrefixStudy(s.world, experiments.DeploymentConfig{
		AttackerSample: o.AttackerSample, Seed: o.seed(),
	})
}

// RunSBGPStudy compares S*BGP security-1st/2nd/3rd route selection under
// a partial core deployment (plus the victim's upstream chain) — the
// Lychev et al. §4 study the paper corroborates.
func (s *Simulator) RunSBGPStudy(o ExperimentOptions) (*SBGPPanel, error) {
	return experiments.SBGPStudy(s.world, experiments.DeploymentConfig{
		AttackerSample: o.AttackerSample, Seed: o.seed(),
	})
}

// RunFalseAlarmStudy compares a promptly-updated origin publication
// against a stale snapshot: false alarms on legitimate origin transfers
// versus hijack detection — the paper's argument for publishing route
// origins rather than relying on historical data.
func (s *Simulator) RunFalseAlarmStudy(o ExperimentOptions) (*FalseAlarmPanel, error) {
	return experiments.FalseAlarmStudy(s.world, experiments.FalseAlarmConfig{
		Prefixes: o.Attacks, Seed: o.seed(),
	})
}

// UnderTier1 and UnderTier2 re-export the hierarchy selectors used by
// TargetQuery.
const (
	AnyHierarchy = topology.AnyHierarchy
	UnderTier1   = topology.UnderTier1
	UnderTier2   = topology.UnderTier2
)
